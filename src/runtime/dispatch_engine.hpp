// dispatch_engine.hpp — a real-thread engine with pluggable dispatch policy.
//
// The LockingEngine's shared queue gives no placement control; this engine
// adds a software dispatcher (mirroring the paper's scheduling layer): the
// submitting thread routes each frame to a worker per policy —
//
//   kRoundRobin  — no affinity (the FCFS baseline),
//   kMruWorker   — the most-recently-*dispatched-to* worker whose queue has
//                  room (concentrates work to keep caches warm),
//   kStreamHash  — stream -> worker (the Wired-Streams analogue).
//
// Workers share one ProtocolStack under a mutex (the Locking paradigm), so
// the policies differ only in cache placement — on real multicore hardware
// kStreamHash keeps each stream's session state in one core's cache. On the
// CI host (1 CPU) the policies are functionally identical, which the tests
// exploit to verify correctness invariants.
//
// Two front-end extensions ride on top of the software policy:
//
//  * EngineOptions::nic_mode — a NIC hardware classifier (RSS, Flow
//    Director, or the transport-friendly consumer-feedback mode) that
//    overrides the software route: the NIC picked the queue before the
//    scheduler ever saw the frame. kTransportFriendly defers every pin move
//    until the old queue's in-flight prefix for the stream has drained, so
//    the steal/failover repins that reorder under Flow Director stay
//    in-order by construction (arXiv:1106.0445).
//  * EngineOptions::steal — affinity-aware work stealing: per-worker queues
//    become MPMC, and an idle worker takes a bounded batch from the head of
//    the longest peer queue (order preserved within the batch). Under Flow
//    Director the stolen stream's pin follows the thief, which makes new
//    arrivals chase it while old frames drain at the victim — the Wu et al.
//    reordering pathology, reproduced by tests/ordering_test.cpp.
#pragma once

#include <atomic>

#include "runtime/engine.hpp"

namespace affinity {

/// Worker-placement policy for DispatchEngine.
enum class DispatchPolicy : std::uint8_t { kRoundRobin, kMruWorker, kStreamHash };

const char* dispatchPolicyName(DispatchPolicy p) noexcept;

/// Locking-paradigm engine with per-worker queues and a placement policy.
class DispatchEngine {
 public:
  DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                 std::size_t ring_capacity = 1024)
      : DispatchEngine(workers, policy, host, optionsWithCapacity(ring_capacity)) {}
  DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                 const EngineOptions& options);
  /// Chaos-harness shape (matches the other engines' ctors): kStreamHash,
  /// the policy whose placement the steal/NIC front-ends act against.
  DispatchEngine(unsigned workers, HostConfig host, const EngineOptions& options)
      : DispatchEngine(workers, DispatchPolicy::kStreamHash, host, options) {}
  ~DispatchEngine() { stop(); }

  /// Opens a UDP port on the shared stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Routes the frame per the policy. When every candidate ring is full the
  /// overload policy applies (kBlock waits with bounded backoff, limited by
  /// the submit deadline when set). False once stopped or rejected —
  /// stats() splits the causes (rejected_stopped vs rejected_queue_full).
  bool submit(WorkItem item);

  /// Closes intake, drains, joins (idempotent). Frames stranded by killed
  /// workers are reconciled inline so conservation holds exactly at return.
  void stop();

  /// Injects a worker crash / stall (see WorkerPool). Call while running.
  void injectWorkerKill(unsigned w) { pool_.injectKill(w); }
  void injectWorkerStall(unsigned w, std::chrono::milliseconds d) { pool_.injectStall(w, d); }

  /// Forces the NIC flow table to re-pin `stream` to `queue` (FlowDirector:
  /// immediately; TransportFriendly: deferred until the old home drains;
  /// no-op otherwise). Exposed so tests can trigger the pin-migration
  /// reordering — and its TFN fix — deterministically.
  void repinStream(std::uint32_t stream, unsigned queue) { nic_.repin(stream, queue % workers_); }

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] DispatchPolicy policy() const noexcept { return policy_; }

  /// stats() snapshot into `reg` under `prefix` (see exportEngineStats).
  void exportMetrics(obs::MetricsRegistry& reg,
                     const std::string& prefix = "engine.dispatch") const {
    exportEngineStats(stats(), reg, prefix);
  }

  /// The worker the policy would pick right now (exposed for tests).
  [[nodiscard]] unsigned route(std::uint32_t stream);

 private:
  struct PerWorker {
    // Exactly one of these is allocated: `ring` (SPSC, steal off) or
    // `queue` (MPMC, steal on — thieves need the consumer seat too).
    std::unique_ptr<SpscRing<WorkItem>> ring;
    std::unique_ptr<MpmcQueue<WorkItem>> queue;
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> delivered{0};
    std::array<std::uint64_t, kNumDropReasons> reasons{};  // owner-written
    LatencyRecorder latency;
    std::uint32_t trace_track = 0;
  };

  static EngineOptions optionsWithCapacity(std::size_t capacity) {
    EngineOptions o;
    o.queue_capacity = capacity;
    return o;
  }
  /// `live` is false only for stop()'s inline reconcile of leftovers — a
  /// drain on behalf of a worker that is no longer consuming, whose
  /// placement feedback must not move a TransportFriendly pin.
  void runFrame(unsigned w, const WorkItem& item, bool live = true);
  bool trySteal(unsigned thief);
  bool anyWorkerAlive() const noexcept;
  /// True while some consumer can still pop queue `w` (a blocked submit to
  /// an undrainable queue would wedge forever): any live worker in steal or
  /// spill mode, the owning worker for a wired queue.
  bool queueDrainable(unsigned w, bool wired) const noexcept;

  unsigned workers_;
  DispatchPolicy policy_;
  EngineOptions options_;
  net::NicDispatcher nic_;
  // Shared stack (Locking paradigm): receiveFrame always runs under
  // stack_mu_; the dispatch policies differ only in cache placement.
  // Outermost in the lock hierarchy, like LockingEngine::stack_mu_ (the
  // delivered observer and stack-layer metrics/trace run under it; NIC pin
  // state is its own inner domain touched by consumer feedback).
  Mutex stack_mu_{"DispatchEngine::stack_mu_"}
      AFF_ACQUIRED_BEFORE(OrderingChecker::mu_, NicDispatcher::mu_,
                          MetricsRegistry::mu_, TraceSession::mu_,
                          FlowTable::Shard::mu);
  ProtocolStack stack_ AFF_GUARDED_BY(stack_mu_);
  FlowFrontEnd flow_;
  std::vector<PerWorker> per_worker_;
  WorkerPool pool_;
  std::atomic<bool> intake_open_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_{0};
  unsigned rr_next_ = 0;   ///< round-robin cursor (submitter thread only)
  unsigned mru_last_ = 0;  ///< most recently dispatched-to worker
  obs::TraceSession* trace_ = nullptr;  // captured at start(); see LockingEngine
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace affinity
