// fault_injector.hpp — deterministic frame-fault injection at engine ingress.
//
// Sits between the traffic source and Engine::submit() on the *submitting*
// thread: given a seed and per-fault rates, it mutates the frame stream the
// same way on every run regardless of worker count or timing — which is what
// makes the chaos determinism guard possible (identical per-cause drop
// counters across runs and --jobs values).
//
// Faults model a hostile/lossy link, not a hostile host: drop (frame lost),
// bitflip (one random bit corrupted), truncate (random tail cut), duplicate
// (frame delivered twice), reorder (frame held back and released after up to
// `reorder_window` later frames). Worker faults (kill/stall) live in
// WorkerPool, not here.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace affinity {

/// Per-fault injection probabilities in [0, 1], evaluated per frame in the
/// order drop → reorder → duplicate → bitflip → truncate (a frame takes at
/// most one fault; order gives drop precedence so rates compose predictably).
struct FaultRates {
  double drop = 0.0;
  double bitflip = 0.0;
  double truncate = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0 || bitflip > 0 || truncate > 0 || duplicate > 0 || reorder > 0;
  }
};

/// What the injector did, for the conservation ledger: every input frame is
/// either passed (possibly corrupted) or counted in `dropped`; duplicates
/// add to the pass count.
struct FaultCounts {
  std::uint64_t input = 0;       ///< frames offered to apply()
  std::uint64_t emitted = 0;     ///< frames handed to the engine
  std::uint64_t dropped = 0;     ///< frames swallowed by the injector
  std::uint64_t bitflips = 0;
  std::uint64_t truncations = 0;
  std::uint64_t duplicates = 0;  ///< extra copies emitted
  std::uint64_t reordered = 0;   ///< frames that left in a different position
};

/// Deterministic fault injector. Not thread-safe: use one per submit thread.
class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultRates rates, std::size_t reorder_window = 8);

  /// Applies at most one fault to `item` and appends the frame(s) to emit
  /// now onto `out` (0 for drop/hold-back, 2 for duplicate, 1 otherwise).
  /// Held-back frames are released once `reorder_window` later frames have
  /// passed, or at flush().
  void apply(WorkItem item, std::vector<WorkItem>& out);

  /// Releases all held-back frames (call once, after the last apply()).
  void flush(std::vector<WorkItem>& out);

  [[nodiscard]] const FaultCounts& counts() const noexcept { return counts_; }
  [[nodiscard]] const FaultRates& rates() const noexcept { return rates_; }

 private:
  void corruptBit(FrameBuf& frame);
  void truncateTail(FrameBuf& frame);

  Rng rng_;
  FaultRates rates_;
  std::size_t reorder_window_;
  std::vector<WorkItem> held_;  ///< reorder hold-back buffer
  std::size_t passed_since_hold_ = 0;
  FaultCounts counts_;
};

}  // namespace affinity
