#include "runtime/dispatch_engine.hpp"

#include <thread>

#include "util/backoff.hpp"

namespace affinity {

const char* dispatchPolicyName(DispatchPolicy p) noexcept {
  switch (p) {
    case DispatchPolicy::kRoundRobin: return "RoundRobin";
    case DispatchPolicy::kMruWorker: return "MRUWorker";
    case DispatchPolicy::kStreamHash: return "StreamHash";
  }
  return "?";
}

DispatchEngine::DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                               std::size_t ring_capacity)
    : workers_(workers), policy_(policy), stack_(host), per_worker_(workers) {
  AFF_CHECK(workers >= 1);
  for (auto& pw : per_worker_) pw.ring = std::make_unique<SpscRing<WorkItem>>(ring_capacity);
}

void DispatchEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  stack_.open(port, session_queue);
}

void DispatchEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  intake_open_.store(true, std::memory_order_release);
  pool_.start(workers_, [this](unsigned w, std::stop_token st) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    for (;;) {
      if (pw.ring->tryPop(item)) {
        ReceiveContext ctx;
        {
          std::lock_guard lock(stack_mu_);
          ctx = stack_.receiveFrame(item.frame);
        }
        pw.processed.fetch_add(1, std::memory_order_relaxed);
        if (!ctx.dropped()) pw.delivered.fetch_add(1, std::memory_order_relaxed);
        pw.latency.record(item.enqueue_tp);
        continue;
      }
      if (st.stop_requested() && !intake_open_.load(std::memory_order_acquire) &&
          pw.ring->empty())
        return;
      std::this_thread::yield();
    }
  });
}

unsigned DispatchEngine::route(std::uint32_t stream) {
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      const unsigned w = rr_next_;
      rr_next_ = (rr_next_ + 1) % workers_;
      return w;
    }
    case DispatchPolicy::kMruWorker:
      // Stay with the most recent worker; its queue depth regulates via the
      // full-ring fallback in submit().
      return mru_last_;
    case DispatchPolicy::kStreamHash:
      return stream % workers_;
  }
  return 0;
}

bool DispatchEngine::submit(WorkItem item) {
  if (!intake_open_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  item.enqueue_tp = std::chrono::steady_clock::now();
  unsigned w = route(item.stream);
  // MRU spill: if the preferred worker's ring is full, advance to the next
  // (the paper's MRU falls back to the next-most-recent processor). Waiting
  // for a full ring uses bounded exponential backoff rather than a bare
  // yield spin: with more submitters than cores a yield loop can starve the
  // very worker that must drain the ring.
  Backoff backoff;
  for (unsigned attempts = 0;; ++attempts) {
    if (per_worker_[w].ring->tryPush(item)) {
      mru_last_ = w;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (policy_ == DispatchPolicy::kStreamHash) {
      // Wired: never migrate; wait for the ring to drain.
      if (!intake_open_.load(std::memory_order_acquire)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      backoff.pause();
      continue;
    }
    w = (w + 1) % workers_;
    if (attempts >= workers_) backoff.pause();  // a full sweep found no room
    if (!intake_open_.load(std::memory_order_acquire)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
}

void DispatchEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  intake_open_.store(false, std::memory_order_release);
  pool_.stopAndJoin();
}

EngineStats DispatchEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected = rejected_.load();
  s.per_worker_processed.reserve(workers_);
  Histogram merged(0.05, 8, 32);
  for (const auto& pw : per_worker_) {
    const std::uint64_t p = pw.processed.load();
    s.processed += p;
    s.delivered += pw.delivered.load();
    s.per_worker_processed.push_back(p);
    merged.merge(pw.latency.histogram());
  }
  if (merged.count() > 0) {
    s.latency_mean_us = merged.mean();
    s.latency_p50_us = merged.quantile(0.50);
    s.latency_p99_us = merged.quantile(0.99);
  }
  return s;
}

}  // namespace affinity
