#include "runtime/dispatch_engine.hpp"

#include <thread>

#include "util/backoff.hpp"

namespace affinity {

const char* dispatchPolicyName(DispatchPolicy p) noexcept {
  switch (p) {
    case DispatchPolicy::kRoundRobin: return "RoundRobin";
    case DispatchPolicy::kMruWorker: return "MRUWorker";
    case DispatchPolicy::kStreamHash: return "StreamHash";
  }
  return "?";
}

DispatchEngine::DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                               const EngineOptions& options)
    : workers_(workers),
      policy_(policy),
      options_(options),
      nic_(options.nic_mode, workers, options.tfn_window),
      stack_(host),
      per_worker_(workers) {
  AFF_CHECK(workers >= 1);
  for (auto& pw : per_worker_) {
    if (options_.steal)
      pw.queue = std::make_unique<MpmcQueue<WorkItem>>(options.queue_capacity);
    else
      pw.ring = std::make_unique<SpscRing<WorkItem>>(options.queue_capacity);
  }
}

void DispatchEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  // The flow table's memory budget is fixed here, before any traffic.
  flow_.materialize(options_.flow, options_.overload == OverloadPolicy::kShedNewFlows);
  MutexLock lock(stack_mu_);  // uncontended pre-start; keeps the annotation exact
  stack_.open(port, session_queue);
}

void DispatchEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  trace_ = obs::TraceSession::active();
  if (trace_ != nullptr) {
    for (unsigned w = 0; w < workers_; ++w)
      per_worker_[w].trace_track = trace_->track("dispatch worker " + std::to_string(w));
  }
  intake_open_.store(true, std::memory_order_release);
  pool_.start(workers_, [this](unsigned w, std::stop_token st) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    for (;;) {
      if (!pool_.tick(w)) return;  // injected crash: stop() reconciles leftovers
      const bool popped = options_.steal ? pw.queue->tryPop(item) : pw.ring->tryPop(item);
      if (popped) {
        runFrame(w, item);
        continue;
      }
      if (options_.steal && trySteal(w)) continue;
      const bool empty = options_.steal ? pw.queue->size() == 0 : pw.ring->empty();
      if (st.stop_requested() && !intake_open_.load(std::memory_order_acquire) && empty)
        return;
      std::this_thread::yield();
    }
  });
}

void DispatchEngine::runFrame(unsigned w, const WorkItem& item, bool live) {
  const bool tfn = options_.nic_mode == net::NicDispatchMode::kTransportFriendly;
  // Orphaned by a flow eviction while queued: already on the
  // evicted_inflight ledger; consume without processing. The frame still
  // drains the TransportFriendly in-flight window, with its (stale-
  // generation) placement evidence discarded.
  if (!flow_.release(item)) {
    if (tfn) nic_.noteDrained(item.stream, /*stale_feedback=*/true);
    return;
  }
  PerWorker& pw = per_worker_[w];
  const double t0 = trace_ != nullptr ? trace_->steadyNowUs() : 0.0;
  ReceiveContext ctx;
  {
    MutexLock lock(stack_mu_);
    ctx = stack_.receiveFrame(item.frame);
    // Under stack_mu_ so observers see the true session delivery order.
    if (!ctx.dropped() && options_.delivered_observer) options_.delivered_observer(item);
  }
  if (options_.nic_mode == net::NicDispatchMode::kFlowDirector) {
    // The pin follows whoever ran the stream — after a steal, new arrivals
    // chase the thief while older frames drain at the victim (Wu et al.).
    nic_.noteRun(item.stream, w);
  } else if (tfn) {
    // Consumer feedback proposes the move; the dispatcher applies it only
    // after the old home's in-flight prefix drains. A reconcile drain
    // (live == false: the worker is a corpse) drains the window without
    // the placement claim — a dead consumer must not attract the pin.
    if (live) {
      nic_.noteRun(item.stream, w);
    } else {
      nic_.noteDrained(item.stream, /*stale_feedback=*/true);
    }
  }
  pw.processed.fetch_add(1, std::memory_order_relaxed);
  if (!ctx.dropped()) pw.delivered.fetch_add(1, std::memory_order_relaxed);
  ++pw.reasons[static_cast<std::size_t>(ctx.drop)];
  pw.latency.record(item.enqueue_tp);
  if (trace_ != nullptr) {
    trace_->span(pw.trace_track, "frame", t0, trace_->steadyNowUs(), item.stream,
                 static_cast<std::uint64_t>(ctx.drop));
  }
}

bool DispatchEngine::trySteal(unsigned thief) {
  // Victim: the longest peer queue (ties to the lowest index) with at least
  // two frames — singleton queues are left to their (warm) owner. The batch
  // comes off the head and is processed in order, so stealing by itself
  // never reorders a stream; only a FlowDirector pin chasing the thief does.
  unsigned victim = workers_;
  std::size_t longest = 1;
  for (unsigned q = 0; q < workers_; ++q) {
    if (q == thief) continue;
    const std::size_t depth = per_worker_[q].queue->size();
    if (depth > longest) {
      longest = depth;
      victim = q;
    }
  }
  if (victim >= workers_) return false;
  const unsigned batch = options_.steal_batch > 0 ? options_.steal_batch : 1;
  WorkItem item;
  std::uint64_t taken = 0;
  for (unsigned i = 0; i < batch && per_worker_[victim].queue->tryPop(item); ++i) {
    runFrame(thief, item);
    ++taken;
  }
  if (taken == 0) return false;
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolen_.fetch_add(taken, std::memory_order_relaxed);
  return true;
}

unsigned DispatchEngine::route(std::uint32_t stream) {
  // A NIC hardware classifier picks the queue before the software policy
  // ever sees the frame (RSS indirection or Flow Director pin).
  if (options_.nic_mode != net::NicDispatchMode::kDirect)
    return nic_.queueOf(stream) % workers_;
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      const unsigned w = rr_next_;
      rr_next_ = (rr_next_ + 1) % workers_;
      return w;
    }
    case DispatchPolicy::kMruWorker:
      // Stay with the most recent worker; its queue depth regulates via the
      // full-ring fallback in submit().
      return mru_last_;
    case DispatchPolicy::kStreamHash:
      return stream % workers_;
  }
  return 0;
}

bool DispatchEngine::submit(WorkItem item) {
  if (!intake_open_.load(std::memory_order_acquire)) {
    rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Flow admission first: a shed frame must never touch a queue. Depth of
  // the routed queue is only observable in steal mode (MPMC); occupancy is
  // the shed-pressure signal otherwise.
  if (!flow_.admit(item)) return false;
  item.enqueue_tp = std::chrono::steady_clock::now();
  unsigned w = route(item.stream);
  // MRU spill: if the preferred worker's ring is full, advance to the next
  // (the paper's MRU falls back to the next-most-recent processor). Once a
  // full sweep finds no room (or the wired ring is full under kStreamHash)
  // the overload policy applies. kBlock waits with bounded exponential
  // backoff rather than a bare yield spin: with more submitters than cores
  // a yield loop can starve the very worker that must drain the ring.
  // kDropOldest degrades to reject-newest here — the submitter cannot take
  // the SPSC consumer seat (see docs/ROBUSTNESS.md).
  Backoff backoff;
  const auto deadline = options_.submit_deadline.count() > 0
                            ? std::chrono::steady_clock::now() + options_.submit_deadline
                            : std::chrono::steady_clock::time_point::max();
  // A NIC front-end fixes the queue like kStreamHash does: no MRU spill —
  // the hardware chose, software only re-resolves (a Flow Director pin can
  // move while we wait on a full queue).
  const bool wired = policy_ == DispatchPolicy::kStreamHash ||
                     options_.nic_mode != net::NicDispatchMode::kDirect;
  const bool tfn = options_.nic_mode == net::NicDispatchMode::kTransportFriendly;
  const std::uint32_t stream = item.stream;
  for (unsigned attempts = 0;; ++attempts) {
    PerWorker& pw = per_worker_[w];
    // Open the TransportFriendly in-flight slot *before* the push (cancel
    // below on failure): a pending repin must never apply in the window
    // between routing and enqueue, or this frame would strand at the old
    // home behind a moved pin.
    if (tfn) nic_.noteDispatched(stream);
    const bool pushed = options_.steal ? pw.queue->tryPush(std::move(item))
                                       : pw.ring->tryPush(item);
    if (pushed) {
      mru_last_ = w;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (tfn) nic_.noteDrained(stream);
    if (!intake_open_.load(std::memory_order_acquire)) {
      flow_.release(item);  // never entered a queue; take it off the flow ledger
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const bool swept_all = wired || attempts >= workers_;
    if (swept_all && options_.overload == OverloadPolicy::kDropOldest && options_.steal) {
      // MPMC queues (steal mode) do allow eviction by the submitter. A
      // victim whose flow was already evicted stays on the evicted_inflight
      // ledger instead of dropped_oldest (never both).
      WorkItem victim;
      if (pw.queue->tryPop(victim)) {
        // The victim leaves the queue unprocessed: close its
        // TransportFriendly in-flight slot too, or the stream's pending
        // repin could wait forever on a frame that no longer exists.
        if (tfn) nic_.noteDrained(victim.stream);
        if (flow_.release(victim)) dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (swept_all && options_.overload != OverloadPolicy::kBlock) {
      flow_.release(item);
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else if (swept_all &&
               (std::chrono::steady_clock::now() >= deadline || !queueDrainable(w, wired))) {
      // kBlock: wait only while a consumer can still reach this queue.
      flow_.release(item);
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!wired) w = (w + 1) % workers_;
    else if (options_.nic_mode != net::NicDispatchMode::kDirect) w = route(item.stream);
    if (swept_all) backoff.pause();
  }
}

bool DispatchEngine::anyWorkerAlive() const noexcept {
  if (pool_.size() == 0) return true;  // pre-start: controls not yet valid
  for (unsigned w = 0; w < workers_; ++w)
    if (!pool_.control(w).exited.load(std::memory_order_acquire)) return true;
  return false;
}

bool DispatchEngine::queueDrainable(unsigned w, bool wired) const noexcept {
  if (pool_.size() == 0) return true;  // pre-start: controls not yet valid
  // Steal mode: any live worker can pop any queue; spill mode (not wired):
  // the submitter retargets every attempt, so any live worker's ring will
  // eventually take the frame. Wired without stealing is the strict case —
  // only the owner drains its queue, and if the owner died, blocking on its
  // full queue would wedge the submitter forever.
  if (options_.steal || !wired) return anyWorkerAlive();
  return !pool_.control(w).exited.load(std::memory_order_acquire);
}

void DispatchEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  intake_open_.store(false, std::memory_order_release);
  pool_.stopAndJoin();
  // Reconcile: killed workers leave frames behind. All threads are joined
  // (taking an SPSC consumer seat is safe now), so process leftovers inline
  // and attribute them to their home worker's counters.
  for (unsigned w = 0; w < workers_; ++w) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    while (options_.steal ? pw.queue->tryPop(item) : pw.ring->tryPop(item))
      runFrame(w, item, /*live=*/false);
  }
}

EngineStats DispatchEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected_queue_full = rejected_queue_full_.load();
  s.rejected_stopped = rejected_stopped_.load();
  s.rejected = s.rejected_queue_full + s.rejected_stopped;
  s.dropped_oldest = dropped_oldest_.load();
  s.steals = steals_.load();
  s.stolen = stolen_.load();
  const net::NicDispatchStats ns = nic_.stats();
  s.nic_pins = ns.pins;
  s.nic_migrations = ns.migrations;
  s.nic_tfn_feedback = ns.tfn_feedback;
  s.nic_tfn_deferred = ns.tfn_deferred;
  s.nic_tfn_applied = ns.tfn_applied;
  s.nic_tfn_stale = ns.tfn_stale;
  s.per_worker_processed.reserve(workers_);
  Histogram merged(0.05, 8, 32);
  for (const auto& pw : per_worker_) {
    const std::uint64_t p = pw.processed.load();
    s.processed += p;
    s.delivered += pw.delivered.load();
    s.per_worker_processed.push_back(p);
    for (std::size_t i = 0; i < pw.reasons.size(); ++i) s.dropped_by_reason[i] += pw.reasons[i];
    merged.merge(pw.latency.histogram());
  }
  if (merged.count() > 0) {
    s.latency_mean_us = merged.mean();
    s.latency_p50_us = merged.quantile(0.50);
    s.latency_p99_us = merged.quantile(0.99);
  }
  flow_.mergeInto(s);
  return s;
}

}  // namespace affinity
