#include "runtime/dispatch_engine.hpp"

#include <thread>

#include "util/backoff.hpp"

namespace affinity {

const char* dispatchPolicyName(DispatchPolicy p) noexcept {
  switch (p) {
    case DispatchPolicy::kRoundRobin: return "RoundRobin";
    case DispatchPolicy::kMruWorker: return "MRUWorker";
    case DispatchPolicy::kStreamHash: return "StreamHash";
  }
  return "?";
}

DispatchEngine::DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                               const EngineOptions& options)
    : workers_(workers), policy_(policy), options_(options), stack_(host), per_worker_(workers) {
  AFF_CHECK(workers >= 1);
  for (auto& pw : per_worker_)
    pw.ring = std::make_unique<SpscRing<WorkItem>>(options.queue_capacity);
}

void DispatchEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  MutexLock lock(stack_mu_);  // uncontended pre-start; keeps the annotation exact
  stack_.open(port, session_queue);
}

void DispatchEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  trace_ = obs::TraceSession::active();
  if (trace_ != nullptr) {
    for (unsigned w = 0; w < workers_; ++w)
      per_worker_[w].trace_track = trace_->track("dispatch worker " + std::to_string(w));
  }
  intake_open_.store(true, std::memory_order_release);
  pool_.start(workers_, [this](unsigned w, std::stop_token st) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    for (;;) {
      if (pw.ring->tryPop(item)) {
        const double t0 = trace_ != nullptr ? trace_->steadyNowUs() : 0.0;
        ReceiveContext ctx;
        {
          MutexLock lock(stack_mu_);
          ctx = stack_.receiveFrame(item.frame);
        }
        pw.processed.fetch_add(1, std::memory_order_relaxed);
        if (!ctx.dropped()) pw.delivered.fetch_add(1, std::memory_order_relaxed);
        ++pw.reasons[static_cast<std::size_t>(ctx.drop)];
        pw.latency.record(item.enqueue_tp);
        if (trace_ != nullptr) {
          trace_->span(pw.trace_track, "frame", t0, trace_->steadyNowUs(), item.stream,
                       static_cast<std::uint64_t>(ctx.drop));
        }
        continue;
      }
      if (st.stop_requested() && !intake_open_.load(std::memory_order_acquire) &&
          pw.ring->empty())
        return;
      std::this_thread::yield();
    }
  });
}

unsigned DispatchEngine::route(std::uint32_t stream) {
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      const unsigned w = rr_next_;
      rr_next_ = (rr_next_ + 1) % workers_;
      return w;
    }
    case DispatchPolicy::kMruWorker:
      // Stay with the most recent worker; its queue depth regulates via the
      // full-ring fallback in submit().
      return mru_last_;
    case DispatchPolicy::kStreamHash:
      return stream % workers_;
  }
  return 0;
}

bool DispatchEngine::submit(WorkItem item) {
  if (!intake_open_.load(std::memory_order_acquire)) {
    rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  item.enqueue_tp = std::chrono::steady_clock::now();
  unsigned w = route(item.stream);
  // MRU spill: if the preferred worker's ring is full, advance to the next
  // (the paper's MRU falls back to the next-most-recent processor). Once a
  // full sweep finds no room (or the wired ring is full under kStreamHash)
  // the overload policy applies. kBlock waits with bounded exponential
  // backoff rather than a bare yield spin: with more submitters than cores
  // a yield loop can starve the very worker that must drain the ring.
  // kDropOldest degrades to reject-newest here — the submitter cannot take
  // the SPSC consumer seat (see docs/ROBUSTNESS.md).
  Backoff backoff;
  const auto deadline = options_.submit_deadline.count() > 0
                            ? std::chrono::steady_clock::now() + options_.submit_deadline
                            : std::chrono::steady_clock::time_point::max();
  for (unsigned attempts = 0;; ++attempts) {
    if (per_worker_[w].ring->tryPush(item)) {
      mru_last_ = w;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!intake_open_.load(std::memory_order_acquire)) {
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const bool swept_all =
        policy_ == DispatchPolicy::kStreamHash || attempts >= workers_;
    if (swept_all && options_.overload != OverloadPolicy::kBlock) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (swept_all && std::chrono::steady_clock::now() >= deadline) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (policy_ != DispatchPolicy::kStreamHash) w = (w + 1) % workers_;
    if (swept_all) backoff.pause();
  }
}

void DispatchEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  intake_open_.store(false, std::memory_order_release);
  pool_.stopAndJoin();
}

EngineStats DispatchEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected_queue_full = rejected_queue_full_.load();
  s.rejected_stopped = rejected_stopped_.load();
  s.rejected = s.rejected_queue_full + s.rejected_stopped;
  s.per_worker_processed.reserve(workers_);
  Histogram merged(0.05, 8, 32);
  for (const auto& pw : per_worker_) {
    const std::uint64_t p = pw.processed.load();
    s.processed += p;
    s.delivered += pw.delivered.load();
    s.per_worker_processed.push_back(p);
    for (std::size_t i = 0; i < pw.reasons.size(); ++i) s.dropped_by_reason[i] += pw.reasons[i];
    merged.merge(pw.latency.histogram());
  }
  if (merged.count() > 0) {
    s.latency_mean_us = merged.mean();
    s.latency_p50_us = merged.quantile(0.50);
    s.latency_p99_us = merged.quantile(0.99);
  }
  return s;
}

}  // namespace affinity
