// queues.hpp — inter-thread queues for the real-thread engines.
//
// MpmcQueue: a bounded blocking multi-producer/multi-consumer queue
// (mutex + condition variables) with close() semantics — simple, correct,
// and fast enough for packet-at-a-time work items of ~100 µs. Storage is a
// ring preallocated at construction, so the steady-state frame path makes
// no global-allocator calls (the deque it replaced allocated a node per
// chunk; see util/arena.hpp for the rest of the zero-alloc story).
//
// SpscRing: a lock-free single-producer/single-consumer ring used on the
// per-worker fast path of the IPS engine (one dispatcher, one worker).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace affinity {

/// Bounded blocking MPMC queue. push() blocks while full; pop() blocks while
/// empty; close() wakes everyone — subsequent pushes fail and pops drain the
/// remaining items then return nullopt.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : ring_(capacity), capacity_(capacity) {
    AFF_CHECK(capacity > 0);
  }

  /// Blocking push; false if the queue was closed.
  bool push(T item) AFF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_full_.wait(mu_, [&]() AFF_REQUIRES(mu_) { return closed_ || count_ < capacity_; });
    if (closed_) return false;
    ring_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false if full or closed. On failure `item` is left
  /// intact (not moved from), so overload-policy retry loops keep the frame.
  bool tryPush(T&& item) AFF_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || count_ >= capacity_) return false;
      ring_[(head_ + count_) % capacity_] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once closed and drained.
  std::optional<T> pop() AFF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_empty_.wait(mu_, [&]() AFF_REQUIRES(mu_) { return closed_ || count_ != 0; });
    if (count_ == 0) return std::nullopt;
    T item = takeFront();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; false when empty. Usable from any thread — including
  /// a producer evicting the oldest item under a drop-oldest overload policy.
  bool tryPop(T& out) AFF_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (count_ == 0) return false;
      out = takeFront();
    }
    not_full_.notify_one();
    return true;
  }

  /// Pop bounded by `timeout`: nullopt on timeout or once closed and
  /// drained (disambiguate with drained()). Lets consumers poll fault/stop
  /// flags instead of blocking indefinitely on an idle queue.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) AFF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_empty_.wait_for(mu_, timeout,
                        [&]() AFF_REQUIRES(mu_) { return closed_ || count_ != 0; });
    if (count_ == 0) return std::nullopt;
    T item = takeFront();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue (idempotent).
  void close() AFF_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const AFF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

  /// True once the queue is closed and every item has been popped.
  [[nodiscard]] bool drained() const AFF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_ && count_ == 0;
  }

 private:
  /// Moves the oldest item out; its ring slot keeps the moved-from shell
  /// (and any capacity it owns) for reuse by a later push.
  [[nodiscard]] T takeFront() AFF_REQUIRES(mu_) {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
    return item;
  }

  // Leaf lock: nothing is ever acquired while a queue is locked (push/pop
  // release before notifying), so it may sit under either engine's stack_mu_.
  mutable Mutex mu_{"MpmcQueue::mu_"};
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> ring_ AFF_GUARDED_BY(mu_);  // fixed slots; [head_, head_+count_)
  std::size_t head_ AFF_GUARDED_BY(mu_) = 0;
  std::size_t count_ AFF_GUARDED_BY(mu_) = 0;
  std::size_t capacity_;
  bool closed_ AFF_GUARDED_BY(mu_) = false;
};

/// Lock-free SPSC ring buffer (capacity rounded up to a power of two; one
/// slot is sacrificed to distinguish full from empty).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side; false if full. On success `item` is moved from; on
  /// failure it is left intact (so callers can retry without copies).
  bool tryPush(T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side; false if empty.
  bool tryPop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace affinity
