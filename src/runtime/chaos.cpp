#include "runtime/chaos.hpp"

#include <sstream>

#include "runtime/dispatch_engine.hpp"
#include "workload/frame_gen.hpp"

namespace affinity {

namespace {

OverloadPolicy parseOverloadPolicy(const std::string& name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "reject-newest") return OverloadPolicy::kRejectNewest;
  if (name == "drop-oldest") return OverloadPolicy::kDropOldest;
  if (name == "shed-new-flows") return OverloadPolicy::kShedNewFlows;
  AFF_CHECK(false &&
            "unknown overload policy (block|reject-newest|drop-oldest|shed-new-flows)");
  return OverloadPolicy::kBlock;
}

template <typename Engine>
ChaosReport runWith(EngineKind kind, const ChaosConfig& cfg) {
  AFF_CHECK(cfg.workers >= 1);
  AFF_CHECK(cfg.streams >= 1);

  ChaosReport rep;
  rep.kind = kind;
  rep.generated = cfg.frames;

  FrameCorpus::Options corpus_opts;
  corpus_opts.streams = cfg.streams;
  FrameCorpus corpus(cfg.seed, corpus_opts);
  // Independent randomness for faults so changing fault rates never
  // perturbs the generated traffic.
  FaultInjector injector(cfg.seed ^ 0x5DEECE66DULL, cfg.faults);
  // Adversarial stream selection: a pure function of the submission index,
  // so it perturbs neither fault randomness nor frame bytes.
  AdversaryOptions adv_opts = cfg.adversary;
  adv_opts.streams = cfg.streams;
  adv_opts.seed = cfg.seed;
  if (adv_opts.collision_buckets == 0) adv_opts.collision_buckets = cfg.workers;
  const AdversaryPattern adversary(adv_opts);

  Engine engine(cfg.workers, HostConfig{}, cfg.engine);
  engine.openPort(corpus.dstPort(), /*session_queue=*/4096);
  engine.start();

  // Fault-injection instants land on the harness track of the global trace
  // session (if any); the engine's own spans were wired up by start().
  obs::TraceSession* trace = obs::TraceSession::active();
  const std::uint32_t chaos_track = trace != nullptr ? trace->track("chaos harness") : 0;

  std::vector<WorkItem> batch;
  for (std::uint64_t i = 0; i < cfg.frames; ++i) {
    // Scheduled worker faults trigger on the generation index, which is
    // independent of fault randomness — so a given scenario kills/stalls
    // at the same point in the traffic on every run.
    if (cfg.kill_at != 0 && i == cfg.kill_at) {
      engine.injectWorkerKill(cfg.kill_worker % cfg.workers);
      if (trace != nullptr)
        trace->instant(chaos_track, "inject kill", trace->steadyNowUs(),
                       cfg.kill_worker % cfg.workers);
    }
    if (cfg.stall_at != 0 && i == cfg.stall_at) {
      engine.injectWorkerStall(cfg.stall_worker % cfg.workers, cfg.stall_duration);
      if (trace != nullptr)
        trace->instant(chaos_track, "inject stall", trace->steadyNowUs(),
                       cfg.stall_worker % cfg.workers);
    }

    const std::uint32_t stream = adversary.streamAt(i);
    // seq = generation index: globally (hence per-stream) monotonic, so
    // the ordering tests can audit delivery order of chaos traffic too.
    WorkItem item{corpus.frame(stream, i), stream, {}, i};
    batch.clear();
    injector.apply(std::move(item), batch);
    for (auto& out : batch) engine.submit(std::move(out));
  }
  batch.clear();
  injector.flush(batch);
  for (auto& out : batch) engine.submit(std::move(out));

  engine.stop();
  rep.faults = injector.counts();
  rep.stats = engine.stats();
  rep.intake_balanced =
      rep.faults.emitted == rep.stats.submitted + rep.stats.rejected;
  rep.conserved = rep.intake_balanced && rep.stats.conserved();
  if (cfg.metrics != nullptr) {
    const std::string prefix = std::string("chaos.") + engineKindName(kind);
    exportEngineStats(rep.stats, *cfg.metrics, prefix);
    exportFlowStats(rep.stats, *cfg.metrics, prefix + ".flow");
    auto& reg = *cfg.metrics;
    const auto g = [&](const char* leaf, std::uint64_t v) {
      reg.gauge(prefix + ".faults." + leaf).set(static_cast<double>(v));
    };
    g("emitted", rep.faults.emitted);
    g("dropped", rep.faults.dropped);
    g("bitflips", rep.faults.bitflips);
    g("truncations", rep.faults.truncations);
    g("duplicates", rep.faults.duplicates);
    g("reordered", rep.faults.reordered);
    reg.gauge(prefix + ".run_conserved").set(rep.conserved ? 1.0 : 0.0);
    exportArenaStats(reg);
  }
  return rep;
}

}  // namespace

const char* engineKindName(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kLocking:
      return "locking";
    case EngineKind::kIps:
      return "ips";
    case EngineKind::kDispatch:
      return "dispatch";
  }
  return "?";
}

ChaosReport runChaos(EngineKind kind, const ChaosConfig& config) {
  switch (kind) {
    case EngineKind::kLocking:
      return runWith<LockingEngine>(kind, config);
    case EngineKind::kIps:
      return runWith<IpsEngine>(kind, config);
    case EngineKind::kDispatch:
      return runWith<DispatchEngine>(kind, config);
  }
  AFF_CHECK(false && "unknown engine kind");
  return {};
}

std::string ChaosReport::describe() const {
  std::ostringstream os;
  os << "engine=" << engineKindName(kind) << "\n"
     << "  generated            " << generated << "\n"
     << "  injector: emitted=" << faults.emitted << " dropped=" << faults.dropped
     << " bitflips=" << faults.bitflips << " truncations=" << faults.truncations
     << " duplicates=" << faults.duplicates << " reordered=" << faults.reordered << "\n"
     << "  submitted            " << stats.submitted << "\n"
     << "  rejected             " << stats.rejected << " (queue_full=" << stats.rejected_queue_full
     << " stopped=" << stats.rejected_stopped << " shed=" << stats.rejected_shed << ")\n"
     << "  delivered            " << stats.delivered << "\n"
     << "  dropped_oldest       " << stats.dropped_oldest << "\n"
     << "  worker_failures      " << stats.worker_failures << "\n"
     << "  rehomed              " << stats.rehomed << "\n";
  if (stats.flow_capacity != 0) {
    os << "  flow table           occupancy=" << stats.flow_occupancy << "/"
       << stats.flow_capacity << " inserts=" << stats.flow_inserts
       << " hits=" << stats.flow_hits << "\n"
       << "  evicted_inflight     " << stats.evicted_inflight
       << " (consumed=" << stats.evicted_consumed << ")\n";
    for (std::size_t r = 0; r < stats.evicted_by_reason.size(); ++r) {
      if (stats.evicted_by_reason[r] == 0) continue;
      os << "  evicted[" << flow::evictReasonName(static_cast<flow::EvictReason>(r))
         << "] = " << stats.evicted_by_reason[r] << "\n";
    }
  }
  if (stats.steals != 0 || stats.stolen != 0)
    os << "  steals               " << stats.steals << " (" << stats.stolen << " frames)\n";
  if (stats.nic_pins != 0 || stats.nic_migrations != 0)
    os << "  nic pins/migrations  " << stats.nic_pins << "/" << stats.nic_migrations << "\n";
  for (std::size_t i = 1; i < stats.dropped_by_reason.size(); ++i) {
    if (stats.dropped_by_reason[i] == 0) continue;
    os << "  drop[" << dropReasonName(static_cast<DropReason>(i))
       << "] = " << stats.dropped_by_reason[i] << "\n";
  }
  os << "  intake_balanced      " << (intake_balanced ? "yes" : "NO") << "\n"
     << "  conserved            " << (conserved ? "yes" : "NO") << "\n";
  return os.str();
}

ChaosConfig loadChaosConfig(const ConfigFile& file) {
  ChaosConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(file.getInt("chaos.seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.frames = static_cast<std::uint64_t>(file.getInt("chaos.frames", static_cast<std::int64_t>(cfg.frames)));
  cfg.workers = static_cast<unsigned>(file.getInt("chaos.workers", cfg.workers));
  cfg.streams = static_cast<std::uint32_t>(file.getInt("chaos.streams", cfg.streams));
  cfg.faults.drop = file.getDouble("chaos.drop_rate", cfg.faults.drop);
  cfg.faults.bitflip = file.getDouble("chaos.bitflip_rate", cfg.faults.bitflip);
  cfg.faults.truncate = file.getDouble("chaos.truncate_rate", cfg.faults.truncate);
  cfg.faults.duplicate = file.getDouble("chaos.duplicate_rate", cfg.faults.duplicate);
  cfg.faults.reorder = file.getDouble("chaos.reorder_rate", cfg.faults.reorder);
  cfg.kill_at = static_cast<std::uint64_t>(file.getInt("chaos.kill_at", 0));
  cfg.kill_worker = static_cast<unsigned>(file.getInt("chaos.kill_worker", 0));
  cfg.stall_at = static_cast<std::uint64_t>(file.getInt("chaos.stall_at", 0));
  cfg.stall_worker = static_cast<unsigned>(file.getInt("chaos.stall_worker", 0));
  cfg.stall_duration =
      std::chrono::milliseconds(file.getInt("chaos.stall_ms", cfg.stall_duration.count()));

  const std::string workload =
      file.getString("chaos.workload", adversaryKindName(cfg.adversary.kind));
  AFF_CHECK(parseAdversaryKind(workload, &cfg.adversary.kind) &&
            "unknown chaos.workload (none|zipf|churn|flash|collision)");
  cfg.adversary.zipf_alpha = file.getDouble("chaos.zipf_alpha", cfg.adversary.zipf_alpha);
  cfg.adversary.churn_period = static_cast<std::uint64_t>(
      file.getInt("chaos.churn_period", static_cast<std::int64_t>(cfg.adversary.churn_period)));
  cfg.adversary.churn_active =
      static_cast<std::uint32_t>(file.getInt("chaos.churn_active", cfg.adversary.churn_active));
  cfg.adversary.flash_period = static_cast<std::uint64_t>(
      file.getInt("chaos.flash_period", static_cast<std::int64_t>(cfg.adversary.flash_period)));
  cfg.adversary.flash_len = static_cast<std::uint64_t>(
      file.getInt("chaos.flash_len", static_cast<std::int64_t>(cfg.adversary.flash_len)));
  cfg.adversary.flash_hot =
      static_cast<std::uint32_t>(file.getInt("chaos.flash_hot", cfg.adversary.flash_hot));
  cfg.adversary.collision_buckets = static_cast<unsigned>(
      file.getInt("chaos.collision_buckets", cfg.adversary.collision_buckets));
  cfg.adversary.collision_fraction =
      file.getDouble("chaos.collision_fraction", cfg.adversary.collision_fraction);

  cfg.engine.queue_capacity =
      static_cast<std::size_t>(file.getInt("engine.queue_capacity",
                                           static_cast<std::int64_t>(cfg.engine.queue_capacity)));
  cfg.engine.overload =
      parseOverloadPolicy(file.getString("engine.overload", overloadPolicyName(cfg.engine.overload)));
  cfg.engine.submit_deadline =
      std::chrono::microseconds(file.getInt("engine.submit_deadline_us", 0));
  cfg.engine.watchdog = file.getBool("engine.watchdog", cfg.engine.watchdog);
  cfg.engine.watchdog_interval =
      std::chrono::milliseconds(file.getInt("engine.watchdog_interval_ms",
                                            cfg.engine.watchdog_interval.count()));
  cfg.engine.stall_timeout = std::chrono::milliseconds(
      file.getInt("engine.stall_timeout_ms", cfg.engine.stall_timeout.count()));
  const std::string nic = file.getString("engine.nic", net::nicModeName(cfg.engine.nic_mode));
  AFF_CHECK(net::parseNicMode(nic, &cfg.engine.nic_mode) &&
            "unknown engine.nic (direct|rss|flow-director)");
  cfg.engine.steal = file.getBool("engine.steal", cfg.engine.steal);
  cfg.engine.steal_batch =
      static_cast<unsigned>(file.getInt("engine.steal_batch", cfg.engine.steal_batch));

  cfg.engine.flow.enabled = file.getBool("engine.flow_enabled", cfg.engine.flow.enabled);
  cfg.engine.flow.budget_bytes = static_cast<std::size_t>(file.getInt(
      "engine.flow_budget_bytes", static_cast<std::int64_t>(cfg.engine.flow.budget_bytes)));
  cfg.engine.flow.shards =
      static_cast<unsigned>(file.getInt("engine.flow_shards", cfg.engine.flow.shards));
  const std::string evict = file.getString("engine.flow_policy",
                                           flow::evictPolicyName(cfg.engine.flow.policy));
  AFF_CHECK(flow::parseEvictPolicy(evict, &cfg.engine.flow.policy) &&
            "unknown engine.flow_policy (lru|fifo|random|direct)");
  cfg.engine.flow.shed_high_water =
      file.getDouble("engine.flow_high_water", cfg.engine.flow.shed_high_water);
  cfg.engine.flow.shed_low_water =
      file.getDouble("engine.flow_low_water", cfg.engine.flow.shed_low_water);
  cfg.engine.flow.shed_admit_fraction =
      file.getDouble("engine.flow_admit_fraction", cfg.engine.flow.shed_admit_fraction);
  cfg.engine.flow.seed = static_cast<std::uint64_t>(
      file.getInt("engine.flow_seed", static_cast<std::int64_t>(cfg.engine.flow.seed)));
  return cfg;
}

}  // namespace affinity
