// worker_pool.hpp — thread pinning and a generic pinned worker pool.
#pragma once

#include <cstdint>
#include <functional>
#include <stop_token>
#include <thread>
#include <vector>

namespace affinity {

/// Pins the calling thread to `cpu` (mod hardware concurrency). Returns
/// false if the platform refuses (the engines then run unpinned — correct,
/// just without placement control; inevitable on single-CPU machines).
bool pinThisThread(unsigned cpu) noexcept;

/// Number of CPUs the process may run on.
unsigned availableCpus() noexcept;

/// A set of jthreads, each pinned to a CPU (round-robin over available
/// CPUs) and running `body(worker_index, stop_token)`.
class WorkerPool {
 public:
  using Body = std::function<void(unsigned worker, std::stop_token st)>;

  WorkerPool() = default;
  ~WorkerPool() { stopAndJoin(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches `count` workers. May be called once.
  void start(unsigned count, Body body, bool pin = true);

  /// Requests stop and joins all workers (idempotent).
  void stopAndJoin();

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(threads_.size()); }

 private:
  std::vector<std::jthread> threads_;
};

}  // namespace affinity
