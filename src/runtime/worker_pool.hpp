// worker_pool.hpp — thread pinning, a generic pinned worker pool, and
// deterministic worker-failure injection (kill / stall) with per-worker
// heartbeats for watchdog-based stall detection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stop_token>
#include <thread>
#include <vector>

namespace affinity {

/// Pins the calling thread to `cpu` (mod hardware concurrency). Returns
/// false if the platform refuses (the engines then run unpinned — correct,
/// just without placement control; inevitable on single-CPU machines).
bool pinThisThread(unsigned cpu) noexcept;

/// Number of CPUs the process may run on.
unsigned availableCpus() noexcept;

/// Per-worker fault-injection and liveness state. Worker bodies advance
/// `heartbeat` via WorkerPool::tick(); a watchdog that sees a frozen
/// heartbeat (or `exited`) on a worker with pending work declares it failed.
struct WorkerControl {
  std::atomic<std::uint64_t> heartbeat{0};  ///< advanced by tick(); frozen = stalled
  std::atomic<bool> kill{false};            ///< tick() returns false: simulate crash
  std::atomic<std::int64_t> stall_us{0};    ///< consumed (once) by the next tick()
  std::atomic<bool> exited{false};          ///< set after the body returns

  /// Total injected faults observed by this worker (stalls served + kills).
  std::atomic<std::uint64_t> faults_taken{0};
};

/// A set of jthreads, each pinned to a CPU (round-robin over available
/// CPUs) and running `body(worker_index, stop_token)`.
class WorkerPool {
 public:
  using Body = std::function<void(unsigned worker, std::stop_token st)>;

  WorkerPool() = default;
  ~WorkerPool() { stopAndJoin(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches `count` workers. May be called once.
  void start(unsigned count, Body body, bool pin = true);

  /// Requests stop and joins all workers (idempotent).
  void stopAndJoin();

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(threads_.size()); }

  /// Fault-injection / liveness state of worker `w`. Valid after start().
  [[nodiscard]] WorkerControl& control(unsigned w) { return *controls_[w]; }
  [[nodiscard]] const WorkerControl& control(unsigned w) const { return *controls_[w]; }

  /// Heartbeat + fault hook; worker bodies call this once per loop
  /// iteration. Serves a pending injected stall (sleeping with the
  /// heartbeat frozen — exactly what a wedged worker looks like from the
  /// outside), then reports whether the worker should keep running: false
  /// means an injected kill — the body must return immediately WITHOUT
  /// draining or handing off its work (that is the crash being simulated;
  /// recovery belongs to the engine's watchdog).
  [[nodiscard]] bool tick(unsigned w);

  /// Injects a crash: worker `w` exits at its next tick(), abandoning any
  /// queued work. Engines recover via their watchdog. Idempotent.
  void injectKill(unsigned w);

  /// Injects a stall: worker `w` sleeps `d` at its next tick() with its
  /// heartbeat frozen, then resumes (or exits, if killed meanwhile).
  void injectStall(unsigned w, std::chrono::milliseconds d);

 private:
  std::vector<std::jthread> threads_;
  // unique_ptr: WorkerControl holds atomics (not movable), and controls must
  // stay address-stable while worker threads hold references.
  std::vector<std::unique_ptr<WorkerControl>> controls_;
};

}  // namespace affinity
