// engine.hpp — real-thread packet-processing engines.
//
// The simulation (src/core) is the source of the paper's numbers; these
// engines execute the *actual* protocol stack (src/proto) on real threads,
// demonstrating the two parallelization paradigms as running code:
//
//  * LockingEngine — one shared ProtocolStack guarded by a mutex; workers
//    pull frames from a shared queue (any packet on any worker).
//  * IpsEngine — one private ProtocolStack per worker; frames are routed to
//    a worker by stream hash over SPSC rings (no locks on the fast path,
//    maximal affinity, per-stream serialization — exactly IPS's trade).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "proto/stack.hpp"
#include "runtime/queues.hpp"
#include "runtime/worker_pool.hpp"
#include "stats/histogram.hpp"

namespace affinity {

/// Counters common to both engines.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< submit() failed (queue full / stopped)
  std::uint64_t processed = 0;  ///< frames run through a stack
  std::uint64_t delivered = 0;  ///< frames that reached a session
  std::vector<std::uint64_t> per_worker_processed;
  // End-to-end latency (submit to completed processing), µs. Zero when no
  // frame has completed.
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
};

/// A frame plus its routing hint.
struct WorkItem {
  std::vector<std::uint8_t> frame;
  std::uint32_t stream = 0;
  /// Stamped by submit(); used for end-to-end latency.
  std::chrono::steady_clock::time_point enqueue_tp{};
};

/// Per-worker latency recorder (owned by exactly one worker thread while
/// the engine runs; merged by stats() after workers quiesce).
class LatencyRecorder {
 public:
  LatencyRecorder() : hist_(0.05, 8, 32) {}

  void record(std::chrono::steady_clock::time_point enqueue_tp) {
    const auto now = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(now - enqueue_tp).count();
    hist_.add(us);
  }

  [[nodiscard]] const Histogram& histogram() const noexcept { return hist_; }

 private:
  Histogram hist_;
};

/// Shared-stack (Locking) engine.
class LockingEngine {
 public:
  LockingEngine(unsigned workers, HostConfig host, std::size_t queue_capacity = 1024);
  ~LockingEngine() { stop(); }

  /// Opens a UDP port on the shared stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Enqueues a frame (blocking when the queue is full). False once stopped.
  bool submit(WorkItem item);

  /// Closes the intake, drains in-flight work, joins workers (idempotent).
  void stop();

  [[nodiscard]] EngineStats stats() const;

 private:
  unsigned workers_;
  ProtocolStack stack_;
  std::mutex stack_mu_;
  MpmcQueue<WorkItem> queue_;
  WorkerPool pool_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::vector<std::uint64_t> per_worker_;       // written by owning worker only
  std::vector<LatencyRecorder> per_worker_lat_; // written by owning worker only
  bool started_ = false;
  bool stopped_ = false;
};

/// Independent-stacks (IPS) engine: stack-per-worker, hash routing.
class IpsEngine {
 public:
  IpsEngine(unsigned workers, HostConfig host, std::size_t ring_capacity = 1024);
  ~IpsEngine() { stop(); }

  /// Opens a UDP port on every worker's stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Routes the frame to worker (stream % workers). Spins briefly if that
  /// worker's ring is full; false once stopped.
  bool submit(WorkItem item);

  void stop();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] unsigned workerOf(std::uint32_t stream) const noexcept {
    return stream % workers_;
  }

 private:
  struct PerWorker {
    std::unique_ptr<ProtocolStack> stack;
    std::unique_ptr<SpscRing<WorkItem>> ring;
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> delivered{0};
    LatencyRecorder latency;
  };

  unsigned workers_;
  std::vector<PerWorker> per_worker_;
  WorkerPool pool_;
  std::atomic<bool> intake_open_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace affinity
