// engine.hpp — real-thread packet-processing engines.
//
// The simulation (src/core) is the source of the paper's numbers; these
// engines execute the *actual* protocol stack (src/proto) on real threads,
// demonstrating the two parallelization paradigms as running code:
//
//  * LockingEngine — one shared ProtocolStack guarded by a mutex; workers
//    pull frames from a shared queue (any packet on any worker).
//  * IpsEngine — one private ProtocolStack per worker; frames are routed to
//    a worker by stream hash over SPSC rings (no locks on the fast path,
//    maximal affinity, per-stream serialization — exactly IPS's trade).
//
// Both engines are built to *degrade, not die* (docs/ROBUSTNESS.md):
// malformed frames become per-cause drop counters, overload follows a
// pluggable policy with an optional submit deadline, an optional watchdog
// detects killed/stalled workers and re-homes their work, and per-flow
// state lives in a bounded sharded FlowTable (src/flow) sized once at
// openPort — under state exhaustion the table evicts per policy and the
// kShedNewFlows overload policy sheds new-flow admissions. At stop() the
// conservation invariant holds exactly:
//
//   submitted == delivered + Σ dropped_by_reason + dropped_oldest
//              + Σ evicted_inflight
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "flow/flow_table.hpp"
#include "net/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/stack.hpp"
#include "runtime/queues.hpp"
#include "runtime/worker_pool.hpp"
#include "stats/histogram.hpp"
#include "util/arena.hpp"
#include "util/mutex.hpp"

namespace affinity {

struct WorkItem;  // defined below; EngineOptions::delivered_observer needs the name

/// What submit() does when the target queue/ring is full.
enum class OverloadPolicy : std::uint8_t {
  kBlock,         ///< wait for room (bounded by submit_deadline when set)
  kRejectNewest,  ///< fail fast: reject the incoming frame
  kDropOldest,    ///< evict the oldest queued frame to admit the new one
                  ///< (shared-queue engines only; ring engines reject —
                  ///< the SPSC consumer seat belongs to the worker)
  kShedNewFlows,  ///< adaptive load shedding: when flow-table occupancy
                  ///< (or queue depth, where observable) crosses the
                  ///< high-water mark, reject admissions for flows not
                  ///< already in the table — established flows are never
                  ///< shed. Queue-full still rejects the newest frame.
};

const char* overloadPolicyName(OverloadPolicy p) noexcept;

/// Robustness and overload knobs shared by the engines. The defaults
/// reproduce the pre-fault-tolerance behavior: block forever, no watchdog.
struct EngineOptions {
  std::size_t queue_capacity = 1024;  ///< shared queue / per-worker ring slots
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Longest submit() may wait under kBlock; 0 = unbounded.
  std::chrono::microseconds submit_deadline{0};
  /// Run a watchdog thread that detects dead/stalled workers (per-worker
  /// heartbeats) and triggers recovery (IPS: stream re-homing).
  bool watchdog = false;
  std::chrono::milliseconds watchdog_interval{2};
  /// Heartbeat silence after which a live worker is declared stalled.
  std::chrono::milliseconds stall_timeout{100};
  /// NIC dispatch front-end: how submit() maps a stream to a worker queue
  /// (ring engines only — the Locking engine has one shared queue). kDirect
  /// preserves the historical `stream % workers` routing bit-for-bit.
  net::NicDispatchMode nic_mode = net::NicDispatchMode::kDirect;
  /// kTransportFriendly staleness window (consumptions at the current pin a
  /// parked repin proposal survives before it is dropped as stale).
  unsigned tfn_window = net::NicDispatcher::kDefaultTfnWindow;
  /// Affinity-aware work stealing (DispatchEngine only): idle workers take a
  /// bounded batch from the head of the longest peer queue. Requires MPMC
  /// per-worker queues, so it is opt-in.
  bool steal = false;
  unsigned steal_batch = 4;  ///< max frames taken per steal
  /// Called after each frame that reaches a session, from the processing
  /// thread (or from stop()'s reconcile drain). Used by the ordering tests
  /// to observe per-stream delivery order; leave empty for no overhead.
  std::function<void(const WorkItem&)> delivered_observer;
  /// Bounded per-flow state (src/flow): budget, shard count, eviction
  /// policy, and shed water marks. The table is materialized at openPort —
  /// the memory budget is fixed before any traffic — and shedding is armed
  /// only under OverloadPolicy::kShedNewFlows.
  flow::FlowTableConfig flow;
};

/// Counters common to both engines.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;             ///< aggregate: queue_full + stopped + shed
  std::uint64_t rejected_queue_full = 0;  ///< no room (or submit deadline hit)
  std::uint64_t rejected_stopped = 0;     ///< intake already closed
  std::uint64_t rejected_shed = 0;        ///< new flows shed under kShedNewFlows
  std::uint64_t dropped_oldest = 0;       ///< evicted under kDropOldest
  std::uint64_t processed = 0;  ///< frames run through a stack
  std::uint64_t delivered = 0;  ///< frames that reached a session
  std::uint64_t worker_failures = 0;  ///< workers declared failed by the watchdog
  std::uint64_t rehomed = 0;          ///< frames flushed from failed workers
  std::uint64_t steals = 0;           ///< steal events (batches taken)
  std::uint64_t stolen = 0;           ///< frames moved by stealing
  std::uint64_t nic_pins = 0;         ///< FDir/TFN: streams pinned
  std::uint64_t nic_migrations = 0;   ///< FDir/TFN: pin moves
  std::uint64_t nic_tfn_feedback = 0;  ///< TFN: consumer feedback accepted
  std::uint64_t nic_tfn_deferred = 0;  ///< TFN: repins parked behind in-flight
  std::uint64_t nic_tfn_applied = 0;   ///< TFN: parked repins applied on drain
  std::uint64_t nic_tfn_stale = 0;     ///< TFN: stale proposals/feedback dropped
  /// Frames dropped by the protocol stack, by typed cause (DropReason).
  std::array<std::uint64_t, kNumDropReasons> dropped_by_reason{};
  // Bounded flow-table ledger (zero everywhere when no table is attached).
  std::uint64_t flow_inserts = 0;    ///< flow entries created
  std::uint64_t flow_hits = 0;       ///< admissions to established flows
  std::uint64_t flow_occupancy = 0;  ///< live entries at snapshot time
  std::uint64_t flow_capacity = 0;   ///< fixed entry capacity
  std::uint64_t flow_shed_engaged = 0;  ///< occupancy latch engagements
  /// Entries evicted, by cause (flow::EvictReason).
  std::array<std::uint64_t, flow::kNumEvictReasons> evicted_by_reason{};
  /// Frames orphaned by evictions: submitted and queued, but their flow was
  /// evicted before they were processed. Pre-counted at eviction time;
  /// consumed (without processing) when they surface.
  std::uint64_t evicted_inflight = 0;
  std::uint64_t evicted_consumed = 0;  ///< orphaned frames actually surfaced so far
  std::vector<std::uint64_t> per_worker_processed;
  // End-to-end latency (submit to completed processing), µs. Zero when no
  // frame has completed.
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;

  /// Total stack drops across all causes.
  [[nodiscard]] std::uint64_t droppedByStack() const noexcept;

  /// Total flow evictions across all causes.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    std::uint64_t total = 0;
    for (const auto v : evicted_by_reason) total += v;
    return total;
  }

  /// The conservation invariant; exact once the engine has stopped. Every
  /// submitted frame is delivered, dropped by the stack for a named cause,
  /// evicted from a queue under kDropOldest, or orphaned by a flow eviction
  /// (evicted_inflight) — nothing vanishes without a counter.
  [[nodiscard]] bool conserved() const noexcept {
    return submitted == delivered + droppedByStack() + dropped_oldest + evicted_inflight;
  }
};

/// Writes an EngineStats snapshot into `reg` under `prefix` — e.g.
/// "engine.ips.submitted", "engine.ips.worker.3.processed",
/// "engine.ips.dropped.ip-bad-checksum". Gauge semantics (absolute values
/// at export time), so repeated exports overwrite rather than double-count.
void exportEngineStats(const EngineStats& s, obs::MetricsRegistry& reg,
                       const std::string& prefix);

/// Writes the flow-table slice of an EngineStats snapshot into `reg` under
/// the rt.flow.* domain (docs/OBSERVABILITY.md) — e.g. "rt.flow.inserts",
/// "rt.flow.evicted.capacity". Gauge semantics, like exportEngineStats.
void exportFlowStats(const EngineStats& s, obs::MetricsRegistry& reg,
                     const std::string& prefix = "rt.flow");

/// Writes the TransportFriendly dispatch slice of an EngineStats snapshot
/// into `reg` under the rt.net.tfn.* domain (docs/OBSERVABILITY.md) — e.g.
/// "rt.net.tfn.applied". Gauge semantics, like exportEngineStats.
void exportTfnStats(const EngineStats& s, obs::MetricsRegistry& reg,
                    const std::string& prefix = "rt.net.tfn");

/// Writes the process-wide FrameArena counters into `reg` under the
/// rt.arena.* domain (docs/OBSERVABILITY.md) — e.g. "rt.arena.allocs",
/// "rt.arena.cross_thread_returns". Gauge semantics, like exportEngineStats.
void exportArenaStats(obs::MetricsRegistry& reg, const std::string& prefix = "rt.arena");

/// A frame plus its routing hint. The frame lives in the submitting
/// thread's FrameArena (util/arena.hpp): constructing a WorkItem from a
/// std::vector copies the bytes into the arena once, and every queue hop
/// after that is a pointer move — zero global-allocator traffic on the
/// steady-state path (tests/arena_test.cpp pins this).
struct WorkItem {
  FrameBuf frame;
  std::uint32_t stream = 0;
  /// Stamped by submit(); used for end-to-end latency.
  std::chrono::steady_clock::time_point enqueue_tp{};
  /// Caller-stamped per-stream sequence number (the ordering tests use it
  /// to detect reordering at delivery; engines carry it, never read it).
  std::uint64_t seq = 0;
  /// Flow-table generation stamped at admission: a frame whose flow was
  /// evicted while it sat in a queue is recognized at process time by the
  /// generation mismatch (already accounted under evicted_inflight).
  std::uint64_t flow_gen = 0;
};

/// Per-worker latency recorder (owned by exactly one worker thread while
/// the engine runs; merged by stats() after workers quiesce).
class LatencyRecorder {
 public:
  LatencyRecorder() : hist_(0.05, 8, 32) {}

  void record(std::chrono::steady_clock::time_point enqueue_tp) {
    const auto now = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(now - enqueue_tp).count();
    hist_.add(us);
  }

  [[nodiscard]] const Histogram& histogram() const noexcept { return hist_; }

 private:
  Histogram hist_;
};

/// Flow-admission front end shared by the engines: owns the bounded
/// FlowTable (src/flow), materialized at openPort so the memory budget is
/// fixed before any traffic. Admission stamps the WorkItem with the flow
/// generation; release at process/drop time detects frames orphaned by an
/// eviction. When no table is attached (openPort not called, or
/// flow.enabled = false) every call degenerates to the pre-table behavior.
class FlowFrontEnd {
 public:
  /// Builds the table once (idempotent). `shed_armed` wires the table's
  /// shedding layer to OverloadPolicy::kShedNewFlows.
  void materialize(flow::FlowTableConfig cfg, bool shed_armed) {
    if (table_ != nullptr || !cfg.enabled) return;
    cfg.shed_enabled = shed_armed;
    table_ = std::make_unique<flow::FlowTable>(cfg);
  }

  /// Admits `item`'s flow and stamps item.flow_gen. False means the
  /// shedding layer refused a new flow — the frame must be rejected before
  /// it touches any queue. `queue_depth`/`queue_capacity` feed the optional
  /// queue-depth pressure signal (pass 0/0 where depth is unobservable;
  /// that signal is timing-dependent and stays out of determinism configs).
  bool admit(WorkItem& item, std::size_t queue_depth = 0, std::size_t queue_capacity = 0) {
    if (table_ == nullptr) return true;
    bool pressure = false;
    if (queue_capacity > 0 && table_->config().shed_enabled) {
      const auto& c = table_->config();
      const auto mark = [&](double frac) {
        return static_cast<std::uint64_t>(frac * static_cast<double>(queue_capacity));
      };
      pressure = queue_latch_.update(queue_depth, mark(c.shed_high_water),
                                     mark(c.shed_low_water));
    }
    const flow::AdmitResult r = table_->admit(item.stream, pressure);
    if (r.status == flow::AdmitResult::Status::kShed) return false;
    item.flow_gen = r.gen;
    return true;
  }

  /// Releases one in-flight frame. True when the flow is still live (the
  /// caller processes or drop-counts the frame as before); false when the
  /// flow was evicted since admission — the frame was already accounted
  /// under evicted_inflight and must be consumed silently.
  bool release(const WorkItem& item) {
    if (table_ == nullptr) return true;
    if (table_->release(item.stream, item.flow_gen)) return true;
    consumed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Folds the table's ledger into an EngineStats snapshot.
  void mergeInto(EngineStats& s) const {
    if (table_ == nullptr) return;
    const flow::FlowTableStats f = table_->stats();
    s.flow_inserts = f.inserts;
    s.flow_hits = f.hits;
    s.flow_occupancy = f.occupancy;
    s.flow_capacity = f.capacity;
    s.flow_shed_engaged = f.shed_engaged;
    s.evicted_by_reason = f.evicted_by_reason;
    s.evicted_inflight = f.evicted_inflight;
    s.evicted_consumed = consumed_.load(std::memory_order_relaxed);
    s.rejected_shed = f.shed;
    s.rejected += f.shed;
  }

  [[nodiscard]] const flow::FlowTable* table() const noexcept { return table_.get(); }

 private:
  std::unique_ptr<flow::FlowTable> table_;
  flow::ShedLatch queue_latch_;
  std::atomic<std::uint64_t> consumed_{0};
};

/// Shared-stack (Locking) engine.
class LockingEngine {
 public:
  LockingEngine(unsigned workers, HostConfig host, std::size_t queue_capacity = 1024)
      : LockingEngine(workers, host, optionsWithCapacity(queue_capacity)) {}
  LockingEngine(unsigned workers, HostConfig host, const EngineOptions& options);
  ~LockingEngine() { stop(); }

  /// Opens a UDP port on the shared stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Enqueues a frame per the overload policy (kBlock waits, bounded by the
  /// submit deadline when set). False once stopped or rejected.
  bool submit(WorkItem item);

  /// Closes the intake, drains in-flight work, joins workers (idempotent).
  /// Any frames stranded by killed workers are reconciled inline so the
  /// conservation invariant holds exactly at return.
  void stop();

  /// Injects a worker crash / stall (see WorkerPool). Call while running.
  void injectWorkerKill(unsigned w) { pool_.injectKill(w); }
  void injectWorkerStall(unsigned w, std::chrono::milliseconds d) { pool_.injectStall(w, d); }

  [[nodiscard]] EngineStats stats() const;

  /// Frames fully processed so far. Safe to poll while workers run —
  /// stats() is not, because it merges the owner-written per-worker arrays
  /// and is only coherent once the engine has quiesced (drained or stopped).
  [[nodiscard]] std::uint64_t processedCount() const noexcept {
    return processed_.load(std::memory_order_acquire);
  }

  /// stats() snapshot into `reg` under `prefix` (see exportEngineStats).
  void exportMetrics(obs::MetricsRegistry& reg,
                     const std::string& prefix = "engine.locking") const {
    exportEngineStats(stats(), reg, prefix);
  }

 private:
  static EngineOptions optionsWithCapacity(std::size_t capacity) {
    EngineOptions o;
    o.queue_capacity = capacity;
    return o;
  }
  void watchdogLoop(std::stop_token st);
  bool anyWorkerAlive() const noexcept;

  unsigned workers_;
  EngineOptions options_;
  // The Locking paradigm's one shared stack: every receiveFrame holds
  // stack_mu_ (that serialization is the paradigm under study, not a
  // bottleneck to engineer away). Outermost in the lock hierarchy: the
  // worker loop runs the delivered observer (which may take
  // OrderingChecker::mu_) and stack layers may record metrics/trace events
  // while it is held. The declared order below is enforced by afflint's
  // lock-order rule and, in AFF_LOCKDEP builds, by util/lockdep.hpp.
  Mutex stack_mu_{"LockingEngine::stack_mu_"}
      AFF_ACQUIRED_BEFORE(OrderingChecker::mu_, MetricsRegistry::mu_,
                          TraceSession::mu_, FlowTable::Shard::mu);
  ProtocolStack stack_ AFF_GUARDED_BY(stack_mu_);
  MpmcQueue<WorkItem> queue_;
  FlowFrontEnd flow_;
  WorkerPool pool_;
  std::jthread watchdog_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> worker_failures_{0};
  std::vector<std::uint64_t> per_worker_;       // written by owning worker only
  std::vector<LatencyRecorder> per_worker_lat_; // written by owning worker only
  // Per-worker drop causes (owner-written), plus a slot for frames
  // reconciled inline by stop() after all workers died.
  std::vector<std::array<std::uint64_t, kNumDropReasons>> per_worker_reasons_;
  std::array<std::uint64_t, kNumDropReasons> drain_reasons_{};
  LatencyRecorder drain_lat_;
  // Tracing (captured from TraceSession::active() at start(); spans carry
  // steady-clock session time). Null when tracing is off.
  obs::TraceSession* trace_ = nullptr;
  std::vector<std::uint32_t> trace_tracks_;  // one per worker
  std::uint32_t watchdog_track_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

/// Independent-stacks (IPS) engine: stack-per-worker, hash routing, and
/// watchdog-driven failover — a dead worker's streams are re-homed to a
/// survivor and its ring is flushed in order.
class IpsEngine {
 public:
  IpsEngine(unsigned workers, HostConfig host, std::size_t ring_capacity = 1024)
      : IpsEngine(workers, host, optionsWithCapacity(ring_capacity)) {}
  IpsEngine(unsigned workers, HostConfig host, const EngineOptions& options);
  ~IpsEngine() { stop(); }

  /// Opens a UDP port on every worker's stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Routes the frame to workerOf(stream) per the overload policy. False
  /// once stopped or rejected.
  bool submit(WorkItem item);

  /// Stops watchdog and workers, then reconciles any frames stranded in
  /// dead workers' rings (processed on their own stacks) so the
  /// conservation invariant holds exactly (idempotent).
  void stop();

  void injectWorkerKill(unsigned w) { pool_.injectKill(w); }
  void injectWorkerStall(unsigned w, std::chrono::milliseconds d) { pool_.injectStall(w, d); }

  [[nodiscard]] EngineStats stats() const;

  /// stats() snapshot into `reg` under `prefix` (see exportEngineStats).
  void exportMetrics(obs::MetricsRegistry& reg, const std::string& prefix = "engine.ips") const {
    exportEngineStats(stats(), reg, prefix);
  }

  /// Home worker of a stream — the NIC dispatch front-end's queue choice
  /// (kDirect: `stream % workers`; kRss: Toeplitz indirection; kFDir:
  /// last-seen pin), following failover redirects past workers the
  /// watchdog has declared dead.
  [[nodiscard]] unsigned workerOf(std::uint32_t stream) const noexcept;

 private:
  struct PerWorker {
    std::unique_ptr<ProtocolStack> stack;
    std::unique_ptr<SpscRing<WorkItem>> ring;
    // Failover lane: the SPSC ring's producer seat belongs to the
    // submitter and its consumer seat to the worker, so re-homed frames
    // from a dead peer arrive through this mutexed side queue, polled via
    // the flag (one relaxed load on the fast path).
    std::unique_ptr<MpmcQueue<WorkItem>> recovery;
    std::atomic<bool> recovery_pending{false};
    std::atomic<bool> dead{false};
    std::atomic<unsigned> redirect{0};  ///< failover target (self while alive)
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> delivered{0};
    std::array<std::uint64_t, kNumDropReasons> reasons{};  // owner-written
    LatencyRecorder latency;
    std::uint32_t trace_track = 0;
  };

  static EngineOptions optionsWithCapacity(std::size_t capacity) {
    EngineOptions o;
    o.queue_capacity = capacity;
    return o;
  }
  void processOn(PerWorker& pw, const WorkItem& item);
  void watchdogLoop(std::stop_token st);
  void declareFailed(unsigned w);
  void flushFailed(unsigned w);
  bool anyWorkerAlive() const noexcept;

  unsigned workers_;
  EngineOptions options_;
  // NIC front-end. Mutable because workerOf() is const (routing is a read
  // in spirit; the dispatcher's internal pin table self-synchronizes).
  mutable net::NicDispatcher nic_;
  std::vector<PerWorker> per_worker_;
  FlowFrontEnd flow_;
  WorkerPool pool_;
  std::jthread watchdog_;
  std::atomic<bool> intake_open_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  std::atomic<std::uint64_t> worker_failures_{0};
  std::atomic<std::uint64_t> rehomed_{0};
  obs::TraceSession* trace_ = nullptr;  // captured at start(); see LockingEngine
  std::uint32_t watchdog_track_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace affinity
