#include "runtime/queues.hpp"

// Template-only header; this translation unit anchors the library.
