#include "runtime/fault_injector.hpp"

#include "util/check.hpp"

namespace affinity {

FaultInjector::FaultInjector(std::uint64_t seed, FaultRates rates, std::size_t reorder_window)
    : rng_(seed), rates_(rates), reorder_window_(reorder_window) {
  AFF_CHECK(reorder_window >= 1);
}

void FaultInjector::corruptBit(FrameBuf& frame) {
  if (frame.empty()) return;
  const std::uint64_t bit = rng_.uniform_u64(frame.size() * 8);
  frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++counts_.bitflips;
}

void FaultInjector::truncateTail(FrameBuf& frame) {
  if (frame.empty()) return;
  // Keep a uniform prefix in [0, size): always cuts at least one byte.
  frame.resize(rng_.uniform_u64(frame.size()));
  ++counts_.truncations;
}

void FaultInjector::apply(WorkItem item, std::vector<WorkItem>& out) {
  ++counts_.input;
  // One fault per frame, drop first: a dropped frame consumes no further
  // randomness for itself, keeping rates independent of each other.
  if (rates_.drop > 0 && rng_.bernoulli(rates_.drop)) {
    ++counts_.dropped;
    return;
  }
  if (rates_.reorder > 0 && rng_.bernoulli(rates_.reorder)) {
    held_.push_back(std::move(item));
    ++counts_.reordered;
    return;
  }
  if (rates_.duplicate > 0 && rng_.bernoulli(rates_.duplicate)) {
    out.push_back(item);  // copy
    ++counts_.duplicates;
    ++counts_.emitted;
  }
  if (rates_.bitflip > 0 && rng_.bernoulli(rates_.bitflip)) {
    corruptBit(item.frame);
  } else if (rates_.truncate > 0 && rng_.bernoulli(rates_.truncate)) {
    truncateTail(item.frame);
  }
  out.push_back(std::move(item));
  ++counts_.emitted;
  // Release held-back frames once enough later traffic has passed them.
  if (!held_.empty() && ++passed_since_hold_ >= reorder_window_) {
    passed_since_hold_ = 0;
    for (auto& h : held_) {
      out.push_back(std::move(h));
      ++counts_.emitted;
    }
    held_.clear();
  }
}

void FaultInjector::flush(std::vector<WorkItem>& out) {
  for (auto& h : held_) {
    out.push_back(std::move(h));
    ++counts_.emitted;
  }
  held_.clear();
  passed_since_hold_ = 0;
}

}  // namespace affinity
