#include "runtime/engine.hpp"

#include <chrono>

#include "util/backoff.hpp"

namespace affinity {

namespace {

using Clock = std::chrono::steady_clock;

/// Deadline for a kBlock submit; max() when unbounded.
Clock::time_point submitDeadline(const EngineOptions& options) {
  if (options.submit_deadline.count() <= 0) return Clock::time_point::max();
  return Clock::now() + options.submit_deadline;
}

void mergeLatency(EngineStats& s, const Histogram& merged) {
  if (merged.count() == 0) return;
  s.latency_mean_us = merged.mean();
  s.latency_p50_us = merged.quantile(0.50);
  s.latency_p99_us = merged.quantile(0.99);
}

/// Heartbeat tracker used by both engines' watchdogs: a worker is failed
/// when it exited while work remained possible, or when its heartbeat has
/// not advanced for `stall_timeout`.
struct LivenessTrack {
  std::uint64_t last_heartbeat = 0;
  Clock::time_point last_change{};
  bool failed = false;
  bool flushed = false;  ///< IPS only: ring already flushed to a survivor
};

}  // namespace

const char* overloadPolicyName(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kRejectNewest:
      return "reject-newest";
    case OverloadPolicy::kDropOldest:
      return "drop-oldest";
    case OverloadPolicy::kShedNewFlows:
      return "shed-new-flows";
  }
  return "?";
}

std::uint64_t EngineStats::droppedByStack() const noexcept {
  std::uint64_t total = 0;
  // Slot 0 is kNone (not a drop).
  for (std::size_t i = 1; i < dropped_by_reason.size(); ++i) total += dropped_by_reason[i];
  return total;
}

void exportEngineStats(const EngineStats& s, obs::MetricsRegistry& reg,
                       const std::string& prefix) {
  const auto g = [&](const char* leaf, double v) { reg.gauge(prefix + "." + leaf).set(v); };
  g("submitted", static_cast<double>(s.submitted));
  g("rejected", static_cast<double>(s.rejected));
  g("rejected_queue_full", static_cast<double>(s.rejected_queue_full));
  g("rejected_stopped", static_cast<double>(s.rejected_stopped));
  g("rejected_shed", static_cast<double>(s.rejected_shed));
  g("dropped_oldest", static_cast<double>(s.dropped_oldest));
  g("processed", static_cast<double>(s.processed));
  g("delivered", static_cast<double>(s.delivered));
  g("worker_failures", static_cast<double>(s.worker_failures));
  g("rehomed", static_cast<double>(s.rehomed));
  g("sched.steal.count", static_cast<double>(s.steals));
  g("sched.steal.jobs", static_cast<double>(s.stolen));
  g("net.dispatch.pins", static_cast<double>(s.nic_pins));
  g("net.dispatch.migrations", static_cast<double>(s.nic_migrations));
  // TransportFriendly counters stay out of the export unless the mode ran,
  // keeping direct/RSS/FDir snapshots byte-identical to before.
  if (s.nic_tfn_feedback + s.nic_tfn_deferred + s.nic_tfn_applied + s.nic_tfn_stale > 0) {
    g("net.dispatch.tfn.feedback", static_cast<double>(s.nic_tfn_feedback));
    g("net.dispatch.tfn.deferred", static_cast<double>(s.nic_tfn_deferred));
    g("net.dispatch.tfn.applied", static_cast<double>(s.nic_tfn_applied));
    g("net.dispatch.tfn.stale", static_cast<double>(s.nic_tfn_stale));
  }
  g("latency_mean_us", s.latency_mean_us);
  g("latency_p50_us", s.latency_p50_us);
  g("latency_p99_us", s.latency_p99_us);
  g("conserved", s.conserved() ? 1.0 : 0.0);
  for (std::size_t r = 1; r < s.dropped_by_reason.size(); ++r) {
    if (s.dropped_by_reason[r] == 0) continue;  // keep the export sparse
    reg.gauge(prefix + ".dropped." + dropReasonName(static_cast<DropReason>(r)))
        .set(static_cast<double>(s.dropped_by_reason[r]));
  }
  for (std::size_t w = 0; w < s.per_worker_processed.size(); ++w) {
    reg.gauge(prefix + ".worker." + std::to_string(w) + ".processed")
        .set(static_cast<double>(s.per_worker_processed[w]));
  }
}

void exportFlowStats(const EngineStats& s, obs::MetricsRegistry& reg,
                     const std::string& prefix) {
  const auto g = [&](const char* leaf, std::uint64_t v) {
    reg.gauge(prefix + "." + leaf).set(static_cast<double>(v));
  };
  g("inserts", s.flow_inserts);
  g("hits", s.flow_hits);
  g("occupancy", s.flow_occupancy);
  g("capacity", s.flow_capacity);
  g("shed", s.rejected_shed);
  g("shed_engaged", s.flow_shed_engaged);
  g("evicted_inflight", s.evicted_inflight);
  g("evicted_consumed", s.evicted_consumed);
  for (std::size_t r = 0; r < s.evicted_by_reason.size(); ++r) {
    if (s.evicted_by_reason[r] == 0) continue;  // keep the export sparse
    reg.gauge(prefix + ".evicted." + flow::evictReasonName(static_cast<flow::EvictReason>(r)))
        .set(static_cast<double>(s.evicted_by_reason[r]));
  }
}

void exportTfnStats(const EngineStats& s, obs::MetricsRegistry& reg,
                    const std::string& prefix) {
  const auto g = [&](const char* leaf, std::uint64_t v) {
    reg.gauge(prefix + "." + leaf).set(static_cast<double>(v));
  };
  g("pins", s.nic_pins);
  g("migrations", s.nic_migrations);
  g("feedback", s.nic_tfn_feedback);
  g("deferred", s.nic_tfn_deferred);
  g("applied", s.nic_tfn_applied);
  g("stale", s.nic_tfn_stale);
}

void exportArenaStats(obs::MetricsRegistry& reg, const std::string& prefix) {
  const ArenaStats s = FrameArena::totalStats();
  const auto g = [&](const char* leaf, std::uint64_t v) {
    reg.gauge(prefix + "." + leaf).set(static_cast<double>(v));
  };
  g("allocs", s.allocs);
  g("frees", s.frees);
  g("cross_thread_returns", s.cross_thread_returns);
  g("slab_refills", s.slab_refills);
  g("oversize_allocs", s.oversize_allocs);
  g("bytes_reserved", s.bytes_reserved);
}

// ---------------------------------------------------------------- Locking --

LockingEngine::LockingEngine(unsigned workers, HostConfig host, const EngineOptions& options)
    : workers_(workers),
      options_(options),
      stack_(host),
      queue_(options.queue_capacity),
      per_worker_(workers, 0),
      per_worker_lat_(workers),
      per_worker_reasons_(workers) {
  AFF_CHECK(workers >= 1);
}

void LockingEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  // The flow table's memory budget is fixed here, before any traffic.
  flow_.materialize(options_.flow, options_.overload == OverloadPolicy::kShedNewFlows);
  MutexLock lock(stack_mu_);  // uncontended pre-start; keeps the annotation exact
  stack_.open(port, session_queue);
}

void LockingEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  trace_ = obs::TraceSession::active();
  if (trace_ != nullptr) {
    trace_tracks_.clear();
    for (unsigned w = 0; w < workers_; ++w)
      trace_tracks_.push_back(trace_->track("locking worker " + std::to_string(w)));
    watchdog_track_ = trace_->track("locking watchdog");
  }
  pool_.start(workers_, [this](unsigned w, std::stop_token) {
    // Timed pops (instead of blocking forever) so injected kills/stalls are
    // observable even while the queue is idle. Workers exit when the queue
    // closes and drains, so no enqueued frame is abandoned — unless the
    // worker is killed, in which case stop() reconciles the leftovers.
    for (;;) {
      if (!pool_.tick(w)) return;  // injected crash: abandon everything
      auto item = queue_.popFor(std::chrono::milliseconds(1));
      if (!item) {
        if (queue_.drained()) return;
        continue;
      }
      // A generation miss means the frame's flow was evicted while it sat
      // in the queue: it is already on the evicted_inflight ledger, so
      // consume it without processing (and without counting it anywhere
      // else — that would double-book it).
      if (!flow_.release(*item)) continue;
      const double t0 = trace_ != nullptr ? trace_->steadyNowUs() : 0.0;
      ReceiveContext ctx;
      {
        MutexLock lock(stack_mu_);
        ctx = stack_.receiveFrame(item->frame);
        // Under stack_mu_ so observers see the true session delivery order
        // (which, for a shared queue with >1 worker, is still not a
        // per-stream total order — the ordering tests characterize that).
        if (!ctx.dropped() && options_.delivered_observer) options_.delivered_observer(*item);
      }
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (!ctx.dropped()) delivered_.fetch_add(1, std::memory_order_relaxed);
      ++per_worker_reasons_[w][static_cast<std::size_t>(ctx.drop)];
      ++per_worker_[w];
      per_worker_lat_[w].record(item->enqueue_tp);
      if (trace_ != nullptr) {
        trace_->span(trace_tracks_[w], "frame", t0, trace_->steadyNowUs(), item->stream,
                     static_cast<std::uint64_t>(ctx.drop));
      }
    }
  });
  if (options_.watchdog)
    watchdog_ = std::jthread([this](std::stop_token st) { watchdogLoop(st); });
}

bool LockingEngine::submit(WorkItem item) {
  if (stopped_.load(std::memory_order_acquire)) {
    rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Flow admission first: a shed frame must never touch the queue. The
  // shared queue's depth doubles as the secondary shed-pressure signal.
  if (!flow_.admit(item, queue_.size(), options_.queue_capacity)) return false;
  item.enqueue_tp = Clock::now();
  Backoff backoff;
  const auto deadline = submitDeadline(options_);
  for (;;) {
    if (queue_.tryPush(std::move(item))) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // tryPush failed without consuming `item`. Full (or closed) queue:
    // apply the overload policy.
    if (stopped_.load(std::memory_order_acquire)) {
      flow_.release(item);  // never entered a queue; take it off the flow ledger
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    switch (options_.overload) {
      case OverloadPolicy::kRejectNewest:
      case OverloadPolicy::kShedNewFlows:  // queue-full degrades to reject-newest
        flow_.release(item);
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        return false;
      case OverloadPolicy::kDropOldest: {
        // Evict the oldest queued frame to make room; it was already
        // counted submitted, so the eviction is a dropped_oldest — unless
        // its flow was evicted in the meantime, in which case it already
        // sits on the evicted_inflight ledger and counting it again here
        // would double-book it.
        WorkItem victim;
        if (queue_.tryPop(victim) && flow_.release(victim))
          dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
        break;  // retry the push
      }
      case OverloadPolicy::kBlock:
        // A full queue only drains while some worker is alive (pre-stop, a
        // worker exits only when killed). With every worker gone an
        // unbounded block would never return: fail the submit instead.
        if (Clock::now() >= deadline || !anyWorkerAlive()) {
          flow_.release(item);
          rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        backoff.pause();
        break;
    }
  }
}

bool LockingEngine::anyWorkerAlive() const noexcept {
  if (pool_.size() == 0) return true;  // pre-start: controls not yet valid
  for (unsigned w = 0; w < workers_; ++w)
    if (!pool_.control(w).exited.load(std::memory_order_acquire)) return true;
  return false;
}

void LockingEngine::watchdogLoop(std::stop_token st) {
  std::vector<LivenessTrack> track(workers_);
  for (auto& t : track) t.last_change = Clock::now();
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(options_.watchdog_interval);
    const auto now = Clock::now();
    for (unsigned w = 0; w < workers_; ++w) {
      LivenessTrack& t = track[w];
      if (t.failed) continue;
      const WorkerControl& ctl = pool_.control(w);
      const std::uint64_t hb = ctl.heartbeat.load(std::memory_order_relaxed);
      const bool exited = ctl.exited.load(std::memory_order_acquire);
      if (hb != t.last_heartbeat) {
        t.last_heartbeat = hb;
        t.last_change = now;
        if (!exited) continue;
      }
      if (exited || now - t.last_change > options_.stall_timeout) {
        // Degradation is inherent to the shared queue: the remaining
        // workers keep draining it. We only account for the failure.
        t.failed = true;
        worker_failures_.fetch_add(1, std::memory_order_relaxed);
        if (trace_ != nullptr)
          trace_->instant(watchdog_track_, exited ? "worker exited" : "worker stalled",
                          trace_->steadyNowUs(), w);
      }
    }
  }
}

void LockingEngine::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_.join();
  }
  queue_.close();
  pool_.stopAndJoin();
  // Reconcile: if workers were killed, frames may remain in the closed
  // queue. Process them inline (single-threaded now) so the conservation
  // invariant holds exactly.
  WorkItem item;
  while (queue_.tryPop(item)) {
    if (!flow_.release(item)) continue;  // orphaned by a flow eviction; already ledgered
    MutexLock lock(stack_mu_);  // workers are joined; uncontended by construction
    const ReceiveContext ctx = stack_.receiveFrame(item.frame);
    processed_.fetch_add(1, std::memory_order_relaxed);
    if (!ctx.dropped()) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (options_.delivered_observer) options_.delivered_observer(item);
    }
    ++drain_reasons_[static_cast<std::size_t>(ctx.drop)];
    drain_lat_.record(item.enqueue_tp);
  }
}

EngineStats LockingEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected_queue_full = rejected_queue_full_.load();
  s.rejected_stopped = rejected_stopped_.load();
  s.rejected = s.rejected_queue_full + s.rejected_stopped;
  s.dropped_oldest = dropped_oldest_.load();
  s.processed = processed_.load();
  s.delivered = delivered_.load();
  s.worker_failures = worker_failures_.load();
  s.per_worker_processed = per_worker_;
  for (const auto& reasons : per_worker_reasons_)
    for (std::size_t i = 0; i < reasons.size(); ++i) s.dropped_by_reason[i] += reasons[i];
  for (std::size_t i = 0; i < drain_reasons_.size(); ++i)
    s.dropped_by_reason[i] += drain_reasons_[i];
  Histogram merged(0.05, 8, 32);
  for (const auto& lat : per_worker_lat_) merged.merge(lat.histogram());
  merged.merge(drain_lat_.histogram());
  mergeLatency(s, merged);
  flow_.mergeInto(s);
  return s;
}

// -------------------------------------------------------------------- IPS --

IpsEngine::IpsEngine(unsigned workers, HostConfig host, const EngineOptions& options)
    : workers_(workers),
      options_(options),
      nic_(options.nic_mode, workers, options.tfn_window),
      per_worker_(workers) {
  AFF_CHECK(workers >= 1);
  for (unsigned w = 0; w < workers_; ++w) {
    PerWorker& pw = per_worker_[w];
    pw.stack = std::make_unique<ProtocolStack>(host);
    pw.ring = std::make_unique<SpscRing<WorkItem>>(options.queue_capacity);
    // Sized so a failover chain can never block the watchdog: in the worst
    // case every other worker's ring (plus its recovery backlog) is flushed
    // into the last survivor's queue.
    pw.recovery = std::make_unique<MpmcQueue<WorkItem>>(2 * workers_ * options.queue_capacity);
    pw.redirect.store(w, std::memory_order_relaxed);
  }
}

void IpsEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  // The flow table's memory budget is fixed here, before any traffic.
  flow_.materialize(options_.flow, options_.overload == OverloadPolicy::kShedNewFlows);
  for (auto& pw : per_worker_) pw.stack->open(port, session_queue);
}

unsigned IpsEngine::workerOf(std::uint32_t stream) const noexcept {
  // NIC dispatch first (kDirect reproduces the historical `stream %
  // workers` exactly), then the failover chain on top of its choice.
  unsigned w = nic_.queueOf(stream) % workers_;
  // Follow failover redirects (bounded: each hop moves to a strictly later
  // declared-failed target; workers_ hops suffice even if every worker is
  // dead, in which case the last one in the chain absorbs the frame and
  // stop() reconciles it).
  for (unsigned hop = 0; hop < workers_; ++hop) {
    const unsigned next = per_worker_[w].redirect.load(std::memory_order_acquire);
    if (next == w) break;
    w = next;
  }
  return w;
}

void IpsEngine::processOn(PerWorker& pw, const WorkItem& item) {
  const unsigned self = static_cast<unsigned>(&pw - per_worker_.data());
  const bool tfn = options_.nic_mode == net::NicDispatchMode::kTransportFriendly;
  // Orphaned by a flow eviction while queued: already on the
  // evicted_inflight ledger; consume without processing. The frame still
  // drains the TransportFriendly in-flight window — but with its flow
  // generation stale, its placement evidence is not trusted.
  if (!flow_.release(item)) {
    if (tfn) nic_.noteDrained(item.stream, /*stale_feedback=*/true);
    return;
  }
  const double t0 = trace_ != nullptr ? trace_->steadyNowUs() : 0.0;
  const ReceiveContext ctx = pw.stack->receiveFrame(item.frame);
  if (options_.nic_mode == net::NicDispatchMode::kFlowDirector) {
    // FlowDirector learns placement from completions: the pin follows the
    // worker that actually ran the stream (failover re-homes thus repin).
    nic_.noteRun(item.stream, self);
  } else if (tfn) {
    // Consumer feedback — unless this drain runs on behalf of a corpse
    // (watchdog-declared dead, or stop()'s inline reconcile of an exited
    // worker's leftovers): a dead consumer's feedback must not pin flows
    // to it, so those frames drain the window without the placement claim.
    const bool corpse = pw.dead.load(std::memory_order_acquire) ||
                        (pool_.size() > 0 &&
                         pool_.control(self).exited.load(std::memory_order_acquire));
    if (corpse) {
      nic_.noteDrained(item.stream, /*stale_feedback=*/true);
    } else {
      nic_.noteRun(item.stream, self);
    }
  }
  pw.processed.fetch_add(1, std::memory_order_relaxed);
  if (!ctx.dropped()) {
    pw.delivered.fetch_add(1, std::memory_order_relaxed);
    if (options_.delivered_observer) options_.delivered_observer(item);
  }
  ++pw.reasons[static_cast<std::size_t>(ctx.drop)];
  pw.latency.record(item.enqueue_tp);
  if (trace_ != nullptr) {
    trace_->span(pw.trace_track, "frame", t0, trace_->steadyNowUs(), item.stream,
                 static_cast<std::uint64_t>(ctx.drop));
  }
}

void IpsEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  trace_ = obs::TraceSession::active();
  if (trace_ != nullptr) {
    for (unsigned w = 0; w < workers_; ++w)
      per_worker_[w].trace_track = trace_->track("ips worker " + std::to_string(w));
    watchdog_track_ = trace_->track("ips watchdog");
  }
  intake_open_.store(true, std::memory_order_release);
  pool_.start(workers_, [this](unsigned w, std::stop_token st) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    for (;;) {
      if (!pool_.tick(w)) return;  // injected crash: abandon ring as-is
      bool did_work = false;
      if (pw.ring->tryPop(item)) {
        processOn(pw, item);
        did_work = true;
      }
      if (pw.recovery_pending.load(std::memory_order_acquire)) {
        // Clear before draining: a push that lands after the drain re-sets
        // the flag (push happens-before the store in flushFailed), so the
        // next iteration sees it.
        pw.recovery_pending.store(false, std::memory_order_relaxed);
        while (pw.recovery->tryPop(item)) {
          processOn(pw, item);
          did_work = true;
        }
      }
      if (did_work) continue;
      if (st.stop_requested() && !intake_open_.load(std::memory_order_acquire) &&
          pw.ring->empty() && !pw.recovery_pending.load(std::memory_order_acquire))
        return;
      std::this_thread::yield();
    }
  });
  if (options_.watchdog)
    watchdog_ = std::jthread([this](std::stop_token st) { watchdogLoop(st); });
}

bool IpsEngine::submit(WorkItem item) {
  if (!intake_open_.load(std::memory_order_acquire)) {
    rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Flow admission first: a shed frame must never touch a ring. Ring depth
  // is not observable from the producer seat, so occupancy is the only
  // shed-pressure signal here.
  if (!flow_.admit(item)) return false;
  item.enqueue_tp = Clock::now();
  Backoff backoff;
  const auto deadline = submitDeadline(options_);
  const bool tfn = options_.nic_mode == net::NicDispatchMode::kTransportFriendly;
  for (;;) {
    // Re-resolve each attempt: the watchdog may re-home the stream while
    // we wait on a (dead) worker's full ring.
    const unsigned target = workerOf(item.stream);
    PerWorker& pw = per_worker_[target];
    // Open the TransportFriendly in-flight slot *before* the push (cancel
    // below on failure): a pending repin must never apply in the window
    // between routing and enqueue, or the frame would strand at the old
    // home behind a moved pin.
    if (tfn) nic_.noteDispatched(item.stream);
    if (pw.ring->tryPush(item)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (tfn) nic_.noteDrained(item.stream);
    if (!intake_open_.load(std::memory_order_acquire)) {
      flow_.release(item);  // never entered a queue; take it off the flow ledger
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    switch (options_.overload) {
      case OverloadPolicy::kRejectNewest:
      case OverloadPolicy::kDropOldest:
      case OverloadPolicy::kShedNewFlows:
        // The ring's consumer seat belongs to the worker, so the submitter
        // cannot evict; drop-oldest (and shed's queue-full case) degrades
        // to reject-newest here (see docs/ROBUSTNESS.md).
        flow_.release(item);
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        return false;
      case OverloadPolicy::kBlock: {
        // A full ring whose owner has exited can only make progress through
        // the watchdog (flush + redirect). If there is no watchdog, or no
        // worker is left alive to redirect to, an unbounded block would spin
        // forever: fail the submit instead.
        const bool owner_gone = pool_.control(target).exited.load(std::memory_order_acquire);
        if (Clock::now() >= deadline ||
            (owner_gone && (!options_.watchdog || !anyWorkerAlive()))) {
          flow_.release(item);
          rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        backoff.pause();
        break;
      }
    }
  }
}

bool IpsEngine::anyWorkerAlive() const noexcept {
  if (pool_.size() == 0) return true;  // pre-start: controls not yet valid
  for (unsigned w = 0; w < workers_; ++w)
    if (!pool_.control(w).exited.load(std::memory_order_acquire)) return true;
  return false;
}

void IpsEngine::declareFailed(unsigned w) {
  // Pick the nearest live successor as the failover target. If none is
  // left, the worker keeps pointing at itself — frames pile up in its ring
  // until stop() reconciles them.
  unsigned target = w;
  for (unsigned hop = 1; hop < workers_; ++hop) {
    const unsigned candidate = (w + hop) % workers_;
    if (!per_worker_[candidate].dead.load(std::memory_order_acquire)) {
      target = candidate;
      break;
    }
  }
  per_worker_[w].dead.store(true, std::memory_order_release);
  per_worker_[w].redirect.store(target, std::memory_order_release);
  worker_failures_.fetch_add(1, std::memory_order_relaxed);
  if (trace_ != nullptr)
    trace_->instant(watchdog_track_, "worker failed", trace_->steadyNowUs(), w);
}

void IpsEngine::flushFailed(unsigned w) {
  // Pre: the worker's thread has exited (its `exited` flag was observed),
  // so taking the ring's consumer seat is safe.
  PerWorker& pw = per_worker_[w];
  WorkItem item;
  // Snapshot first, forward second. When no live successor exists the
  // redirect chain resolves back to `w` itself; forwarding straight out of
  // `pw.recovery` would then re-push every frame into the queue being
  // popped and never terminate.
  std::vector<WorkItem> pending;
  // In-order flush: the ring first (submit order per stream), then any
  // frames that were re-homed *to* this worker before it failed.
  while (pw.ring->tryPop(item)) pending.push_back(std::move(item));
  while (pw.recovery->tryPop(item)) pending.push_back(std::move(item));
  pw.recovery_pending.store(false, std::memory_order_release);
  std::uint64_t moved = 0;
  for (auto& it : pending) {
    const unsigned target = workerOf(it.stream);
    PerWorker& tw = per_worker_[target];
    tw.recovery->push(std::move(it));
    tw.recovery_pending.store(true, std::memory_order_release);
    // Self-parked frames (every worker dead) are reconciled by stop(),
    // not re-homed to a survivor.
    if (target != w) ++moved;
  }
  rehomed_.fetch_add(moved, std::memory_order_relaxed);
  if (trace_ != nullptr)
    trace_->instant(watchdog_track_, "ring flushed", trace_->steadyNowUs(), w);
}

void IpsEngine::watchdogLoop(std::stop_token st) {
  std::vector<LivenessTrack> track(workers_);
  for (auto& t : track) t.last_change = Clock::now();
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(options_.watchdog_interval);
    const auto now = Clock::now();
    for (unsigned w = 0; w < workers_; ++w) {
      LivenessTrack& t = track[w];
      if (t.flushed) continue;
      const WorkerControl& ctl = pool_.control(w);
      const bool exited = ctl.exited.load(std::memory_order_acquire);
      if (!t.failed) {
        const std::uint64_t hb = ctl.heartbeat.load(std::memory_order_relaxed);
        if (hb != t.last_heartbeat) {
          t.last_heartbeat = hb;
          t.last_change = now;
          if (!exited) continue;
        }
        if (!exited && now - t.last_change <= options_.stall_timeout) continue;
        // Dead (exited mid-run) or stalled: re-home its streams now and
        // ask it to exit (a stalled worker that wakes up later must not
        // race the flush of its ring).
        t.failed = true;
        declareFailed(w);
        pool_.injectKill(w);
      }
      // The ring can only be flushed once the worker has provably left it.
      if (exited) {
        flushFailed(w);
        t.flushed = true;
      }
    }
  }
}

void IpsEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_.join();
  }
  intake_open_.store(false, std::memory_order_release);
  pool_.stopAndJoin();
  // Reconcile: killed workers leave frames in their ring/recovery queue
  // (and a stall-failed worker may have exited after the watchdog stopped,
  // unflushed). All threads are joined, so process leftovers inline on
  // each worker's own stack.
  for (auto& pw : per_worker_) {
    WorkItem item;
    while (pw.ring->tryPop(item)) processOn(pw, item);
    while (pw.recovery->tryPop(item)) processOn(pw, item);
  }
}

EngineStats IpsEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected_queue_full = rejected_queue_full_.load();
  s.rejected_stopped = rejected_stopped_.load();
  s.rejected = s.rejected_queue_full + s.rejected_stopped;
  s.worker_failures = worker_failures_.load();
  s.rehomed = rehomed_.load();
  const net::NicDispatchStats ns = nic_.stats();
  s.nic_pins = ns.pins;
  s.nic_migrations = ns.migrations;
  s.nic_tfn_feedback = ns.tfn_feedback;
  s.nic_tfn_deferred = ns.tfn_deferred;
  s.nic_tfn_applied = ns.tfn_applied;
  s.nic_tfn_stale = ns.tfn_stale;
  s.per_worker_processed.reserve(workers_);
  Histogram merged(0.05, 8, 32);
  for (const auto& pw : per_worker_) {
    const std::uint64_t p = pw.processed.load();
    s.processed += p;
    s.delivered += pw.delivered.load();
    s.per_worker_processed.push_back(p);
    for (std::size_t i = 0; i < pw.reasons.size(); ++i) s.dropped_by_reason[i] += pw.reasons[i];
    merged.merge(pw.latency.histogram());
  }
  mergeLatency(s, merged);
  flow_.mergeInto(s);
  return s;
}

}  // namespace affinity
