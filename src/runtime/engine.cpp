#include "runtime/engine.hpp"

#include <chrono>

namespace affinity {

// ---------------------------------------------------------------- Locking --

LockingEngine::LockingEngine(unsigned workers, HostConfig host, std::size_t queue_capacity)
    : workers_(workers),
      stack_(host),
      queue_(queue_capacity),
      per_worker_(workers, 0),
      per_worker_lat_(workers) {
  AFF_CHECK(workers >= 1);
}

void LockingEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  stack_.open(port, session_queue);
}

void LockingEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  pool_.start(workers_, [this](unsigned w, std::stop_token) {
    // Workers exit when the queue closes and drains; the stop token is not
    // consulted so no enqueued frame is abandoned.
    while (auto item = queue_.pop()) {
      ReceiveContext ctx;
      {
        std::lock_guard lock(stack_mu_);
        ctx = stack_.receiveFrame(item->frame);
      }
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (!ctx.dropped()) delivered_.fetch_add(1, std::memory_order_relaxed);
      ++per_worker_[w];
      per_worker_lat_[w].record(item->enqueue_tp);
    }
  });
}

bool LockingEngine::submit(WorkItem item) {
  if (stopped_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  item.enqueue_tp = std::chrono::steady_clock::now();
  if (!queue_.push(std::move(item))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void LockingEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  pool_.stopAndJoin();
}

EngineStats LockingEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected = rejected_.load();
  s.processed = processed_.load();
  s.delivered = delivered_.load();
  s.per_worker_processed = per_worker_;
  Histogram merged(0.05, 8, 32);
  for (const auto& lat : per_worker_lat_) merged.merge(lat.histogram());
  if (merged.count() > 0) {
    s.latency_mean_us = merged.mean();
    s.latency_p50_us = merged.quantile(0.50);
    s.latency_p99_us = merged.quantile(0.99);
  }
  return s;
}

// -------------------------------------------------------------------- IPS --

IpsEngine::IpsEngine(unsigned workers, HostConfig host, std::size_t ring_capacity)
    : workers_(workers), per_worker_(workers) {
  AFF_CHECK(workers >= 1);
  for (auto& pw : per_worker_) {
    pw.stack = std::make_unique<ProtocolStack>(host);
    pw.ring = std::make_unique<SpscRing<WorkItem>>(ring_capacity);
  }
}

void IpsEngine::openPort(std::uint16_t port, std::size_t session_queue) {
  AFF_CHECK(!started_);
  for (auto& pw : per_worker_) pw.stack->open(port, session_queue);
}

void IpsEngine::start() {
  AFF_CHECK(!started_);
  started_ = true;
  intake_open_.store(true, std::memory_order_release);
  pool_.start(workers_, [this](unsigned w, std::stop_token st) {
    PerWorker& pw = per_worker_[w];
    WorkItem item;
    for (;;) {
      if (pw.ring->tryPop(item)) {
        const ReceiveContext ctx = pw.stack->receiveFrame(item.frame);
        pw.processed.fetch_add(1, std::memory_order_relaxed);
        if (!ctx.dropped()) pw.delivered.fetch_add(1, std::memory_order_relaxed);
        pw.latency.record(item.enqueue_tp);
        continue;
      }
      if (st.stop_requested() && !intake_open_.load(std::memory_order_acquire) &&
          pw.ring->empty())
        return;
      std::this_thread::yield();
    }
  });
}

bool IpsEngine::submit(WorkItem item) {
  if (!intake_open_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  item.enqueue_tp = std::chrono::steady_clock::now();
  PerWorker& pw = per_worker_[workerOf(item.stream)];
  // Spin with backoff while the worker's ring is full (bounded wait: the
  // worker drains at protocol-processing speed).
  for (int spin = 0; !pw.ring->tryPush(item); ++spin) {
    if (!intake_open_.load(std::memory_order_acquire)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (spin > 64) std::this_thread::yield();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void IpsEngine::stop() {
  if (stopped_) return;
  stopped_ = true;
  intake_open_.store(false, std::memory_order_release);
  pool_.stopAndJoin();
}

EngineStats IpsEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load();
  s.rejected = rejected_.load();
  s.per_worker_processed.reserve(workers_);
  Histogram merged(0.05, 8, 32);
  for (const auto& pw : per_worker_) {
    const std::uint64_t p = pw.processed.load();
    s.processed += p;
    s.delivered += pw.delivered.load();
    s.per_worker_processed.push_back(p);
    merged.merge(pw.latency.histogram());
  }
  if (merged.count() > 0) {
    s.latency_mean_us = merged.mean();
    s.latency_p50_us = merged.quantile(0.50);
    s.latency_p99_us = merged.quantile(0.99);
  }
  return s;
}

}  // namespace affinity
