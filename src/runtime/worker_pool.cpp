#include "runtime/worker_pool.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace affinity {

bool pinThisThread(unsigned cpu) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % availableCpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

unsigned availableCpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void WorkerPool::start(unsigned count, Body body, bool pin) {
  AFF_CHECK(threads_.empty());
  AFF_CHECK(count >= 1);
  controls_.reserve(count);
  for (unsigned w = 0; w < count; ++w) controls_.push_back(std::make_unique<WorkerControl>());
  threads_.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    WorkerControl* ctl = controls_[w].get();
    threads_.emplace_back([w, body, pin, ctl](std::stop_token st) {
      if (pin) pinThisThread(w);
      body(w, st);
      // seq_cst store: a watchdog that observes `exited` may take over this
      // worker's single-consumer data structures; the store must order
      // after every prior access the body made to them.
      ctl->exited.store(true);
    });
  }
}

bool WorkerPool::tick(unsigned w) {
  WorkerControl& ctl = *controls_[w];
  ctl.heartbeat.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t stall = ctl.stall_us.exchange(0, std::memory_order_acq_rel);
  if (stall > 0) {
    // A hard stall: no heartbeat while sleeping, exactly like a wedged
    // worker. Slept in one piece — injected stalls are bounded by design.
    std::this_thread::sleep_for(std::chrono::microseconds(stall));
    ctl.faults_taken.fetch_add(1, std::memory_order_relaxed);
  }
  if (ctl.kill.load(std::memory_order_acquire)) {
    ctl.faults_taken.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void WorkerPool::injectKill(unsigned w) {
  AFF_CHECK(w < controls_.size());
  controls_[w]->kill.store(true, std::memory_order_release);
}

void WorkerPool::injectStall(unsigned w, std::chrono::milliseconds d) {
  AFF_CHECK(w < controls_.size());
  controls_[w]->stall_us.store(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count(),
      std::memory_order_release);
}

void WorkerPool::stopAndJoin() {
  for (auto& t : threads_) t.request_stop();
  threads_.clear();  // jthread joins on destruction
  controls_.clear();
}

}  // namespace affinity
