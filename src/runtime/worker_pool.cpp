#include "runtime/worker_pool.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace affinity {

bool pinThisThread(unsigned cpu) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % availableCpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

unsigned availableCpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void WorkerPool::start(unsigned count, Body body, bool pin) {
  AFF_CHECK(threads_.empty());
  AFF_CHECK(count >= 1);
  threads_.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    threads_.emplace_back([w, body, pin](std::stop_token st) {
      if (pin) pinThisThread(w);
      body(w, st);
    });
  }
}

void WorkerPool::stopAndJoin() {
  for (auto& t : threads_) t.request_stop();
  threads_.clear();  // jthread joins on destruction
}

}  // namespace affinity
