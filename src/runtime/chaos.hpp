// chaos.hpp — the chaos harness: drive an engine with deterministic frame
// faults plus scheduled worker faults, then audit the conservation ledger.
//
// The harness owns the full accounting chain:
//
//   generated == injector.emitted + injector.dropped - injector.duplicates
//   injector.emitted == engine.submitted + engine.rejected
//   engine.submitted == delivered + Σ dropped_by_reason + dropped_oldest
//                       + Σ evicted_inflight
//
// (engine.rejected includes rejected_shed, the flow table's load-shedding
// refusals; evicted_inflight are frames orphaned in-queue by a flow
// eviction — see runtime/engine.hpp and docs/ROBUSTNESS.md.)
//
// A run "conserves" iff every link holds exactly at shutdown — no frame is
// ever lost without a counter naming why. Used by tools/chaos_soak and the
// chaos/determinism tests.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/fault_injector.hpp"
#include "util/config.hpp"
#include "workload/adversary.hpp"

namespace affinity {

/// Which engine paradigm to run under chaos. kDispatch runs DispatchEngine
/// with kStreamHash placement — the target for the NIC-mode and stealing
/// knobs in EngineOptions (engine.nic / engine.steal in the INI).
enum class EngineKind : std::uint8_t { kLocking, kIps, kDispatch };

const char* engineKindName(EngineKind k) noexcept;

/// One chaos scenario. Loadable from an INI [chaos] section.
struct ChaosConfig {
  std::uint64_t seed = 1;
  std::uint64_t frames = 100'000;  ///< frames generated (before faults)
  unsigned workers = 4;
  std::uint32_t streams = 16;
  FaultRates faults;
  EngineOptions engine;  ///< watchdog enabled by default for chaos runs

  /// Adversarial stream-selection pattern (workload/adversary.hpp). The
  /// harness overrides .streams and .seed from this config, and resolves
  /// collision_buckets = workers when left 0; kNone keeps the historical
  /// round-robin traffic bit-for-bit.
  AdversaryOptions adversary;

  // Scheduled worker faults (submit-index triggers; 0 = disabled).
  std::uint64_t kill_at = 0;
  unsigned kill_worker = 0;
  std::uint64_t stall_at = 0;
  unsigned stall_worker = 0;
  std::chrono::milliseconds stall_duration{1200};

  /// Optional metrics registry (not owned): the run exports the engine
  /// ledger and fault counts under "chaos.<engine>." at shutdown. Worker
  /// frame spans / fault instants additionally flow to the process-global
  /// TraceSession when one is active (see tools/chaos_soak --trace-out).
  obs::MetricsRegistry* metrics = nullptr;

  ChaosConfig() {
    engine.watchdog = true;
    engine.watchdog_interval = std::chrono::milliseconds(2);
    // Comfortably above worst-case scheduling gaps on oversubscribed or
    // sanitizer-instrumented hosts (TSan serializes threads), so only the
    // *injected* stall — which lasts longer than this — trips the watchdog.
    engine.stall_timeout = std::chrono::milliseconds(400);
  }
};

/// Outcome of a chaos run plus the audited ledger.
struct ChaosReport {
  EngineKind kind = EngineKind::kLocking;
  std::uint64_t generated = 0;  ///< frames produced by the corpus
  FaultCounts faults;           ///< what the injector did
  EngineStats stats;            ///< engine counters after stop()
  bool intake_balanced = false; ///< emitted == submitted + rejected
  bool conserved = false;       ///< intake_balanced && stats.conserved()

  /// Multi-line human-readable ledger.
  [[nodiscard]] std::string describe() const;
};

/// Runs one chaos scenario to completion (engine stopped, ledger audited).
ChaosReport runChaos(EngineKind kind, const ChaosConfig& config);

/// Reads a ChaosConfig from a ConfigFile's [chaos] + [engine] sections
/// (absent keys keep their defaults).
ChaosConfig loadChaosConfig(const ConfigFile& file);

}  // namespace affinity
