#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"  // jsonEscape

namespace affinity::lint {

namespace {

// ------------------------------------------------------------ preprocessing

// Per-line views of a source file. Rules run over `code` (neither comments
// nor literals can violate a token rule) except metric-name and layering,
// which need literal contents and run over `text`.
struct Views {
  std::vector<std::string> raw;   ///< original lines (suppression scan)
  std::vector<std::string> code;  ///< comments and string/char literals stripped
  std::vector<std::string> text;  ///< comments stripped, literals kept
};

bool isWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

Views preprocess(const std::string& content) {
  Views v;
  {
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line)) v.raw.push_back(line);
    if (v.raw.empty()) v.raw.emplace_back();
  }
  enum class St { kNormal, kLineComment, kBlockComment, kString, kChar };
  St st = St::kNormal;
  std::string code, text;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kNormal;
      v.code.push_back(code);
      v.text.push_back(text);
      code.clear();
      text.clear();
      continue;
    }
    switch (st) {
      case St::kNormal:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"' && i >= 1 && content[i - 1] == 'R' &&
                   (i < 2 || !isWordChar(content[i - 2]) || content[i - 2] == '8')) {
          // Raw string literal R"delim(...)delim" — no escapes, may span
          // lines, may embed quotes (this very file's regexes do).
          std::size_t j = i + 1;
          std::string delim;
          while (j < content.size() && content[j] != '(') delim += content[j++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t close = content.find(closer, j + 1);
          const std::size_t stop =
              close == std::string::npos ? content.size() : close + closer.size();
          code += "\"\"";
          text += '"';
          for (std::size_t k = i + 1; k < stop; ++k) {
            if (content[k] == '\n') {
              v.code.push_back(code);
              v.text.push_back(text);
              code.clear();
              text.clear();
            } else {
              text += content[k];
            }
          }
          i = stop - 1;
        } else if (c == '"') {
          st = St::kString;
          code += '"';
          text += '"';
        } else if (c == '\'') {
          st = St::kChar;
          code += '\'';
          text += '\'';
        } else {
          code += c;
          text += c;
        }
        break;
      case St::kLineComment:
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kNormal;
          ++i;
        }
        break;
      case St::kString:
        text += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text += next;
          ++i;
        } else if (c == '"') {
          code += '"';
          st = St::kNormal;
        }
        break;
      case St::kChar:
        text += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text += next;
          ++i;
        } else if (c == '\'') {
          code += '\'';
          st = St::kNormal;
        }
        break;
    }
  }
  v.code.push_back(code);
  v.text.push_back(text);
  while (v.code.size() < v.raw.size()) v.code.emplace_back();
  while (v.text.size() < v.raw.size()) v.text.emplace_back();
  return v;
}

// ---------------------------------------------------------------- utilities

/// Substring search with identifier boundaries at both word-char edges of
/// the token ("std::condition_variable" does not match ..._any).
bool containsToken(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || !(isWordChar(token.front()) && isWordChar(line[pos - 1]));
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= line.size() || !(isWordChar(token.back()) && isWordChar(line[end]));
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// "runtime" for "src/runtime/engine.hpp"; "" outside src/.
std::string srcSubdir(const std::string& rel_path) {
  if (!startsWith(rel_path, "src/")) return "";
  const std::size_t next = rel_path.find('/', 4);
  if (next == std::string::npos) return "";
  return rel_path.substr(4, next - 4);
}

// ------------------------------------------------------------------- scopes

const std::set<std::string>& metricDomains() {
  static const std::set<std::string> kDomains = {"sim", "sweep", "engine", "chaos",
                                                 "bench", "net", "sched", "rt"};
  return kDomains;
}

/// src/ layering: every subsystem's permitted `#include "dir/..."` targets
/// (besides itself). Mirrors the library link graph in src/*/CMakeLists.txt.
const std::map<std::string, std::set<std::string>>& layerDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"util", {}},
      {"net", {"util"}},
      {"stats", {"util"}},
      {"obs", {"util"}},
      {"sim", {"util"}},
      {"cache", {"util"}},
      {"proto", {"util"}},
      {"flow", {"util"}},
      {"cachesim", {"cache", "util"}},
      {"sched", {"cache", "util"}},
      {"workload", {"net", "proto", "util"}},
      {"analytic", {"cache", "sched", "stats", "util"}},
      {"lint", {"obs", "util"}},
      {"runtime", {"flow", "net", "obs", "proto", "stats", "util", "workload"}},
      {"core",
       {"analytic", "cache", "cachesim", "flow", "net", "obs", "proto", "sched", "sim", "stats",
        "util", "workload"}},
  };
  return kDeps;
}

/// Simulation-path dirs: results must be a pure function of config + seed,
/// so wall clocks are banned outright (steady_clock included).
const std::set<std::string>& simPathDirs() {
  static const std::set<std::string> kDirs = {"sim",      "cache", "cachesim", "proto",
                                              "workload", "sched", "analytic", "stats",
                                              "util",     "net",   "flow"};
  return kDirs;
}

/// Trees whose locking must go through the annotated aff primitives.
const std::set<std::string>& annotatedDirs() {
  static const std::set<std::string> kDirs = {"runtime", "obs", "core", "lint", "net", "flow"};
  return kDirs;
}

// ------------------------------------------------------------- suppressions

/// Scans raw lines for `afflint: allow(rule[, rule])` (suppresses that line
/// and the next — so the comment can sit above the construct) and
/// `afflint: allow-file(rule)` (whole file).
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  // 0-based line -> rules
  std::set<std::string> file_wide;

  bool allows(int line0, const std::string& rule) const {
    if (file_wide.count(rule) != 0) return true;
    for (int l = line0 - 1; l <= line0; ++l) {
      auto it = by_line.find(l);
      if (it != by_line.end() && it->second.count(rule) != 0) return true;
    }
    return false;
  }
};

Suppressions scanSuppressions(const std::vector<std::string>& raw) {
  static const std::regex kAllow(R"(afflint:\s*allow(-file)?\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\))");
  Suppressions s;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), kAllow), end; it != end; ++it) {
      const bool file_wide = (*it)[1].matched;
      std::string rules = (*it)[2].str();
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream in(rules);
      std::string rule;
      while (in >> rule) {
        if (file_wide) {
          s.file_wide.insert(rule);
        } else {
          s.by_line[static_cast<int>(i)].insert(rule);
        }
      }
    }
  }
  return s;
}

// ------------------------------------------------------------------- rules

struct FileCtx {
  const std::string& path;
  const Views& v;
  Suppressions supp;
  std::vector<Finding>* out;

  void report(std::size_t line0, const std::string& rule, std::string message) const {
    if (supp.allows(static_cast<int>(line0), rule)) return;
    out->push_back(Finding{path, static_cast<int>(line0) + 1, rule, std::move(message)});
  }
};

void ruleMetricName(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/") && !startsWith(ctx.path, "tools/") &&
      !startsWith(ctx.path, "bench/"))
    return;
  static const std::regex kCall(
      R"re((\.|->)\s*(counter|gauge|meanStat|timeWeighted|histogram)\s*\(\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*\+\s*)?"([^"]*)")re");
  for (std::size_t i = 0; i < ctx.v.text.size(); ++i) {
    const std::string& line = ctx.v.text[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kCall), end; it != end; ++it) {
      const std::string literal = (*it)[3].str();
      std::string why;
      if (!validMetricName(literal, &why)) {
        ctx.report(i, "metric-name",
                   "metric name \"" + literal + "\" violates the OBSERVABILITY.md scheme: " + why);
      }
    }
  }
}

void ruleNondeterminism(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/") && !startsWith(ctx.path, "tools/") &&
      !startsWith(ctx.path, "bench/"))
    return;
  static const std::regex kRand(R"((^|[^A-Za-z0-9_])s?rand\s*\()");
  static const std::regex kTime(R"((^|[^A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\))");
  const bool sim_path = simPathDirs().count(srcSubdir(ctx.path)) != 0;
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    const std::string& line = ctx.v.code[i];
    if (containsToken(line, "random_device")) {
      ctx.report(i, "nondeterminism",
                 "std::random_device is nondeterministic; derive seeds from the config "
                 "(util/rng.hpp, derivePointSeed)");
    }
    if (std::regex_search(line, kRand)) {
      ctx.report(i, "nondeterminism",
                 "rand()/srand() share hidden global state; use util/rng.hpp");
    }
    if (std::regex_search(line, kTime)) {
      ctx.report(i, "nondeterminism", "time(nullptr) is wall clock; runs must be replayable");
    }
    if (containsToken(line, "system_clock") || containsToken(line, "high_resolution_clock")) {
      ctx.report(i, "nondeterminism",
                 "wall/unspecified clocks are banned; use steady_clock outside sim paths, "
                 "virtual time inside");
    }
    if (sim_path && containsToken(line, "steady_clock")) {
      ctx.report(i, "nondeterminism",
                 "steady_clock in a simulation-path dir: simulation results must be a pure "
                 "function of config + seed (wall time belongs to runtime/obs/core)");
    }
  }
}

void ruleProtoCheck(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/proto/")) return;
  static const std::regex kCheck(R"((^|[^A-Za-z0-9_])AFF_CHECK\s*\()");
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    if (std::regex_search(ctx.v.code[i], kCheck)) {
      ctx.report(i, "proto-check",
                 "AFF_CHECK in src/proto/ aborts on what may be network input; return a typed "
                 "DropReason instead (AFF_DCHECK is fine for internal invariants)");
    }
  }
}

void ruleLayering(const FileCtx& ctx) {
  const std::string dir = srcSubdir(ctx.path);
  if (dir.empty()) return;
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  const auto& deps = layerDeps();
  for (std::size_t i = 0; i < ctx.v.text.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(ctx.v.text[i], m, kInclude)) continue;
    const std::string target = m[1].str();
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-dir include
    const std::string target_dir = target.substr(0, slash);
    if (target_dir == "bench" || target_dir == "tools" || target_dir == "tests" ||
        target_dir == "examples") {
      ctx.report(i, "layering", "src/ must not include from " + target_dir + "/ (\"" + target +
                                    "\"); move shared code into a src/ library");
      continue;
    }
    auto it = deps.find(dir);
    if (it == deps.end() || deps.find(target_dir) == deps.end()) continue;
    if (target_dir == dir || it->second.count(target_dir) != 0) continue;
    ctx.report(i, "layering", "src/" + dir + " may not include src/" + target_dir + " (\"" +
                                  target + "\"); allowed: self + lower layers only "
                                  "(docs/STATIC_ANALYSIS.md has the layer table)");
  }
}

void ruleRawMutex(const FileCtx& ctx) {
  if (annotatedDirs().count(srcSubdir(ctx.path)) == 0) return;
  static const char* kBanned[] = {
      "std::mutex",       "std::timed_mutex",           "std::recursive_mutex",
      "std::shared_mutex", "std::condition_variable",    "std::condition_variable_any",
      "std::lock_guard",  "std::unique_lock",           "std::scoped_lock",
  };
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    for (const char* token : kBanned) {
      if (containsToken(ctx.v.code[i], token)) {
        ctx.report(i, "raw-mutex",
                   std::string(token) + " in an annotated tree bypasses clang thread-safety "
                                        "analysis; use Mutex/MutexLock/CondVar (util/mutex.hpp)");
      }
    }
  }
}

/// src/runtime's steady-state frame path is zero-global-alloc by design
/// (util/arena.hpp; tests/arena_test.cpp pins it). Direct malloc-family
/// calls or raw byte-buffer `new` there reintroduce the global allocator
/// behind the arena's back, so both are banned in the runtime tree.
void ruleFrameArena(const FileCtx& ctx) {
  if (srcSubdir(ctx.path) != "runtime") return;
  static const std::regex kMalloc(R"((^|[^A-Za-z0-9_:.>])(malloc|calloc|realloc)\s*\()");
  static const std::regex kRawByteNew(
      R"(\bnew\s+(std\s*::\s*)?(uint8_t|std::uint8_t|byte|std::byte|unsigned\s+char|char)\s*\[)");
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    const std::string& line = ctx.v.code[i];
    if (std::regex_search(line, kMalloc)) {
      ctx.report(i, "frame-arena",
                 "malloc-family call in src/runtime bypasses the frame arena; allocate "
                 "packet buffers through FrameArena/FrameBuf (util/arena.hpp)");
    }
    if (std::regex_search(line, kRawByteNew)) {
      ctx.report(i, "frame-arena",
                 "raw byte-buffer new[] in src/runtime bypasses the frame arena; use "
                 "FrameBuf (util/arena.hpp) so the frame path stays zero-global-alloc");
    }
  }
}

/// State held per flow on the frame path must live in bounded structures
/// (src/flow's fixed-budget FlowTable) so adversarial flow churn cannot
/// exhaust memory — the PR 7 invariant (docs/ROBUSTNESS.md). Node-based
/// std:: maps grow without limit and allocate per insert, so they are
/// banned in the runtime tree outright; control-plane uses (a map keyed
/// by worker id, say) are bounded by construction and may state so with
/// `afflint: allow(bounded-state)` plus a reason.
void ruleBoundedState(const FileCtx& ctx) {
  if (srcSubdir(ctx.path) != "runtime") return;
  static const char* kBanned[] = {"std::unordered_map", "std::map", "std::multimap",
                                  "std::unordered_multimap"};
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    for (const char* token : kBanned) {
      if (containsToken(ctx.v.code[i], token)) {
        ctx.report(i, "bounded-state",
                   std::string(token) + " in src/runtime grows without bound under flow churn; "
                                        "keep per-flow state in the fixed-budget FlowTable "
                                        "(flow/flow_table.hpp, docs/ROBUSTNESS.md)");
      }
    }
  }
}

void ruleGuardedMutex(const FileCtx& ctx) {
  if (srcSubdir(ctx.path).empty()) return;
  static const std::regex kDecl(
      R"(^\s*(?:mutable\s+)?(?:aff\s*::\s*|affinity\s*::\s*)?Mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*;)");
  std::string whole;
  for (const auto& line : ctx.v.text) {
    whole += line;
    whole += '\n';
  }
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(ctx.v.code[i], m, kDecl)) continue;
    const std::string name = m[1].str();
    const std::regex kRef("AFF_(PT_)?GUARDED_BY\\s*\\([^)]*\\b" + name +
                          "\\b[^)]*\\)|AFF_REQUIRES(_SHARED)?\\s*\\([^)]*\\b" + name +
                          "\\b[^)]*\\)");
    if (!std::regex_search(whole, kRef)) {
      ctx.report(i, "guarded-mutex",
                 "Mutex '" + name + "' has no AFF_GUARDED_BY / AFF_PT_GUARDED_BY / AFF_REQUIRES "
                                    "reference in this file; say what it protects");
    }
  }
}

}  // namespace

// ----------------------------------------------------------------- public

const std::vector<std::string>& ruleNames() {
  static const std::vector<std::string> kRules = {"metric-name",   "nondeterminism",
                                                  "proto-check",   "layering",
                                                  "raw-mutex",     "guarded-mutex",
                                                  "frame-arena",   "bounded-state"};
  return kRules;
}

bool validMetricName(const std::string& literal, std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (literal.empty()) return fail("empty name");
  for (const char c : literal) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.')) {
      return fail(std::string("character '") + c + "' outside [a-z0-9_.]");
    }
  }
  // Leading/trailing dots mark concatenation fragments ("sim.proc.",
  // ".queue_depth_avg"); the surrounding pieces carry the rest of the name.
  const bool anchored = literal.front() != '.';
  std::size_t b = 0;
  std::size_t e = literal.size();
  while (b < e && literal[b] == '.') ++b;
  while (e > b && literal[e - 1] == '.') --e;
  const std::string core = literal.substr(b, e - b);
  if (core.empty()) return true;  // pure "." separator
  std::vector<std::string> segments;
  std::string seg;
  std::istringstream in(core);
  while (std::getline(in, seg, '.')) segments.push_back(seg);
  for (const auto& s : segments) {
    if (s.empty()) return fail("empty path segment (\"..\")");
    if (s.front() == '_') return fail("segment \"" + s + "\" starts with '_'");
  }
  if (anchored && metricDomains().count(segments.front()) == 0) {
    return fail("unknown domain \"" + segments.front() +
                "\" (expected sim/sweep/engine/chaos/bench/net/sched/rt)");
  }
  return true;
}

std::vector<Finding> lintFile(const std::string& rel_path, const std::string& content) {
  std::vector<Finding> out;
  const Views v = preprocess(content);
  FileCtx ctx{rel_path, v, scanSuppressions(v.raw), &out};
  ruleMetricName(ctx);
  ruleNondeterminism(ctx);
  ruleProtoCheck(ctx);
  ruleLayering(ctx);
  ruleRawMutex(ctx);
  ruleGuardedMutex(ctx);
  ruleFrameArena(ctx);
  ruleBoundedState(ctx);
  return out;
}

std::vector<Finding> lintTree(const std::string& root,
                              const std::vector<std::string>& rel_roots) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  for (const auto& rel : rel_roots) {
    const fs::path base = fs::path(root) / rel;
    if (!fs::exists(base)) {
      out.push_back(Finding{rel, 0, "io-error", "no such directory under lint root"});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      const std::string rel_path =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        out.push_back(Finding{rel_path, 0, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto findings = lintFile(rel_path, buf.str());
      out.insert(out.end(), std::make_move_iterator(findings.begin()),
                 std::make_move_iterator(findings.end()));
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

void writeFindingsJson(std::FILE* out, const std::vector<Finding>& findings) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::fprintf(out, "  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}%s\n",
                 obs::jsonEscape(f.file).c_str(), f.line, obs::jsonEscape(f.rule).c_str(),
                 obs::jsonEscape(f.message).c_str(), i + 1 < findings.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

}  // namespace affinity::lint
