#include "lint/lint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"  // jsonEscape

namespace affinity::lint {

namespace {

// ------------------------------------------------------------ preprocessing

// Per-line views of a source file. Rules run over `code` (neither comments
// nor literals can violate a token rule) except metric-name and layering,
// which need literal contents and run over `text`.
struct Views {
  std::vector<std::string> raw;   ///< original lines (suppression scan)
  std::vector<std::string> code;  ///< comments and string/char literals stripped
  std::vector<std::string> text;  ///< comments stripped, literals kept
};

bool isWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

Views preprocess(const std::string& content) {
  Views v;
  {
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line)) v.raw.push_back(line);
    if (v.raw.empty()) v.raw.emplace_back();
  }
  enum class St { kNormal, kLineComment, kBlockComment, kString, kChar };
  St st = St::kNormal;
  std::string code, text;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kNormal;
      v.code.push_back(code);
      v.text.push_back(text);
      code.clear();
      text.clear();
      continue;
    }
    switch (st) {
      case St::kNormal:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"' && i >= 1 && content[i - 1] == 'R' &&
                   (i < 2 || !isWordChar(content[i - 2]) || content[i - 2] == '8')) {
          // Raw string literal R"delim(...)delim" — no escapes, may span
          // lines, may embed quotes (this very file's regexes do).
          std::size_t j = i + 1;
          std::string delim;
          while (j < content.size() && content[j] != '(') delim += content[j++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t close = content.find(closer, j + 1);
          const std::size_t stop =
              close == std::string::npos ? content.size() : close + closer.size();
          code += "\"\"";
          text += '"';
          for (std::size_t k = i + 1; k < stop; ++k) {
            if (content[k] == '\n') {
              v.code.push_back(code);
              v.text.push_back(text);
              code.clear();
              text.clear();
            } else {
              text += content[k];
            }
          }
          i = stop - 1;
        } else if (c == '"') {
          st = St::kString;
          code += '"';
          text += '"';
        } else if (c == '\'') {
          st = St::kChar;
          code += '\'';
          text += '\'';
        } else {
          code += c;
          text += c;
        }
        break;
      case St::kLineComment:
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kNormal;
          ++i;
        }
        break;
      case St::kString:
        text += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text += next;
          ++i;
        } else if (c == '"') {
          code += '"';
          st = St::kNormal;
        }
        break;
      case St::kChar:
        text += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text += next;
          ++i;
        } else if (c == '\'') {
          code += '\'';
          st = St::kNormal;
        }
        break;
    }
  }
  v.code.push_back(code);
  v.text.push_back(text);
  while (v.code.size() < v.raw.size()) v.code.emplace_back();
  while (v.text.size() < v.raw.size()) v.text.emplace_back();
  return v;
}

// ---------------------------------------------------------------- utilities

/// Substring search with identifier boundaries at both word-char edges of
/// the token ("std::condition_variable" does not match ..._any).
bool containsToken(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || !(isWordChar(token.front()) && isWordChar(line[pos - 1]));
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= line.size() || !(isWordChar(token.back()) && isWordChar(line[end]));
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// "runtime" for "src/runtime/engine.hpp"; "" outside src/.
std::string srcSubdir(const std::string& rel_path) {
  if (!startsWith(rel_path, "src/")) return "";
  const std::size_t next = rel_path.find('/', 4);
  if (next == std::string::npos) return "";
  return rel_path.substr(4, next - 4);
}

// ------------------------------------------------------------------- scopes

const std::set<std::string>& metricDomains() {
  static const std::set<std::string> kDomains = {"sim", "sweep", "engine", "chaos",
                                                 "bench", "net", "sched", "rt"};
  return kDomains;
}

/// src/ layering: every subsystem's permitted `#include "dir/..."` targets
/// (besides itself). Mirrors the library link graph in src/*/CMakeLists.txt.
const std::map<std::string, std::set<std::string>>& layerDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"util", {}},
      {"net", {"util"}},
      {"stats", {"util"}},
      {"obs", {"util"}},
      {"sim", {"util"}},
      {"cache", {"util"}},
      {"proto", {"util"}},
      {"flow", {"util"}},
      {"cachesim", {"cache", "util"}},
      {"sched", {"cache", "util"}},
      {"workload", {"net", "proto", "util"}},
      {"analytic", {"cache", "sched", "stats", "util"}},
      {"lint", {"obs", "util"}},
      {"runtime", {"flow", "net", "obs", "proto", "stats", "util", "workload"}},
      {"core",
       {"analytic", "cache", "cachesim", "flow", "net", "obs", "proto", "sched", "sim", "stats",
        "util", "workload"}},
  };
  return kDeps;
}

/// Simulation-path dirs: results must be a pure function of config + seed,
/// so wall clocks are banned outright (steady_clock included).
const std::set<std::string>& simPathDirs() {
  static const std::set<std::string> kDirs = {"sim",      "cache", "cachesim", "proto",
                                              "workload", "sched", "analytic", "stats",
                                              "util",     "net",   "flow"};
  return kDirs;
}

/// Trees whose locking must go through the annotated aff primitives.
const std::set<std::string>& annotatedDirs() {
  static const std::set<std::string> kDirs = {"runtime", "obs", "core", "lint", "net", "flow"};
  return kDirs;
}

// ------------------------------------------------------------- suppressions

/// Scans raw lines for `afflint: allow(rule[, rule])` (suppresses that line
/// and the next — so the comment can sit above the construct) and
/// `afflint: allow-file(rule)` (whole file).
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  // 0-based line -> rules
  std::set<std::string> file_wide;

  bool allows(int line0, const std::string& rule) const {
    if (file_wide.count(rule) != 0) return true;
    for (int l = line0 - 1; l <= line0; ++l) {
      auto it = by_line.find(l);
      if (it != by_line.end() && it->second.count(rule) != 0) return true;
    }
    return false;
  }
};

Suppressions scanSuppressions(const std::vector<std::string>& raw) {
  static const std::regex kAllow(R"(afflint:\s*allow(-file)?\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\))");
  Suppressions s;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), kAllow), end; it != end; ++it) {
      const bool file_wide = (*it)[1].matched;
      std::string rules = (*it)[2].str();
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream in(rules);
      std::string rule;
      while (in >> rule) {
        if (file_wide) {
          s.file_wide.insert(rule);
        } else {
          s.by_line[static_cast<int>(i)].insert(rule);
        }
      }
    }
  }
  return s;
}

// ------------------------------------------------------------------- rules

struct FileCtx {
  const std::string& path;
  const Views& v;
  Suppressions supp;
  std::vector<Finding>* out;

  void report(std::size_t line0, const std::string& rule, std::string message) const {
    if (supp.allows(static_cast<int>(line0), rule)) return;
    out->push_back(Finding{path, static_cast<int>(line0) + 1, rule, std::move(message)});
  }
};

void ruleMetricName(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/") && !startsWith(ctx.path, "tools/") &&
      !startsWith(ctx.path, "bench/"))
    return;
  static const std::regex kCall(
      R"re((\.|->)\s*(counter|gauge|meanStat|timeWeighted|histogram)\s*\(\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*\+\s*)?"([^"]*)")re");
  for (std::size_t i = 0; i < ctx.v.text.size(); ++i) {
    const std::string& line = ctx.v.text[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kCall), end; it != end; ++it) {
      const std::string literal = (*it)[3].str();
      std::string why;
      if (!validMetricName(literal, &why)) {
        ctx.report(i, "metric-name",
                   "metric name \"" + literal + "\" violates the OBSERVABILITY.md scheme: " + why);
      }
    }
  }
}

void ruleNondeterminism(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/") && !startsWith(ctx.path, "tools/") &&
      !startsWith(ctx.path, "bench/"))
    return;
  static const std::regex kRand(R"((^|[^A-Za-z0-9_])s?rand\s*\()");
  static const std::regex kTime(R"((^|[^A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\))");
  const bool sim_path = simPathDirs().count(srcSubdir(ctx.path)) != 0;
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    const std::string& line = ctx.v.code[i];
    if (containsToken(line, "random_device")) {
      ctx.report(i, "nondeterminism",
                 "std::random_device is nondeterministic; derive seeds from the config "
                 "(util/rng.hpp, derivePointSeed)");
    }
    if (std::regex_search(line, kRand)) {
      ctx.report(i, "nondeterminism",
                 "rand()/srand() share hidden global state; use util/rng.hpp");
    }
    if (std::regex_search(line, kTime)) {
      ctx.report(i, "nondeterminism", "time(nullptr) is wall clock; runs must be replayable");
    }
    if (containsToken(line, "system_clock") || containsToken(line, "high_resolution_clock")) {
      ctx.report(i, "nondeterminism",
                 "wall/unspecified clocks are banned; use steady_clock outside sim paths, "
                 "virtual time inside");
    }
    if (sim_path && containsToken(line, "steady_clock")) {
      ctx.report(i, "nondeterminism",
                 "steady_clock in a simulation-path dir: simulation results must be a pure "
                 "function of config + seed (wall time belongs to runtime/obs/core)");
    }
  }
}

void ruleProtoCheck(const FileCtx& ctx) {
  if (!startsWith(ctx.path, "src/proto/")) return;
  static const std::regex kCheck(R"((^|[^A-Za-z0-9_])AFF_CHECK\s*\()");
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    if (std::regex_search(ctx.v.code[i], kCheck)) {
      ctx.report(i, "proto-check",
                 "AFF_CHECK in src/proto/ aborts on what may be network input; return a typed "
                 "DropReason instead (AFF_DCHECK is fine for internal invariants)");
    }
  }
}

void ruleLayering(const FileCtx& ctx) {
  const std::string dir = srcSubdir(ctx.path);
  if (dir.empty()) return;
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  const auto& deps = layerDeps();
  for (std::size_t i = 0; i < ctx.v.text.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(ctx.v.text[i], m, kInclude)) continue;
    const std::string target = m[1].str();
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-dir include
    const std::string target_dir = target.substr(0, slash);
    if (target_dir == "bench" || target_dir == "tools" || target_dir == "tests" ||
        target_dir == "examples") {
      ctx.report(i, "layering", "src/ must not include from " + target_dir + "/ (\"" + target +
                                    "\"); move shared code into a src/ library");
      continue;
    }
    auto it = deps.find(dir);
    if (it == deps.end() || deps.find(target_dir) == deps.end()) continue;
    if (target_dir == dir || it->second.count(target_dir) != 0) continue;
    ctx.report(i, "layering", "src/" + dir + " may not include src/" + target_dir + " (\"" +
                                  target + "\"); allowed: self + lower layers only "
                                  "(docs/STATIC_ANALYSIS.md has the layer table)");
  }
}

void ruleRawMutex(const FileCtx& ctx) {
  if (annotatedDirs().count(srcSubdir(ctx.path)) == 0) return;
  static const char* kBanned[] = {
      "std::mutex",       "std::timed_mutex",           "std::recursive_mutex",
      "std::shared_mutex", "std::condition_variable",    "std::condition_variable_any",
      "std::lock_guard",  "std::unique_lock",           "std::scoped_lock",
  };
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    for (const char* token : kBanned) {
      if (containsToken(ctx.v.code[i], token)) {
        ctx.report(i, "raw-mutex",
                   std::string(token) + " in an annotated tree bypasses clang thread-safety "
                                        "analysis; use Mutex/MutexLock/CondVar (util/mutex.hpp)");
      }
    }
  }
}

/// src/runtime's steady-state frame path is zero-global-alloc by design
/// (util/arena.hpp; tests/arena_test.cpp pins it). Direct malloc-family
/// calls or raw byte-buffer `new` there reintroduce the global allocator
/// behind the arena's back, so both are banned in the runtime tree.
void ruleFrameArena(const FileCtx& ctx) {
  if (srcSubdir(ctx.path) != "runtime") return;
  static const std::regex kMalloc(R"((^|[^A-Za-z0-9_:.>])(malloc|calloc|realloc)\s*\()");
  static const std::regex kRawByteNew(
      R"(\bnew\s+(std\s*::\s*)?(uint8_t|std::uint8_t|byte|std::byte|unsigned\s+char|char)\s*\[)");
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    const std::string& line = ctx.v.code[i];
    if (std::regex_search(line, kMalloc)) {
      ctx.report(i, "frame-arena",
                 "malloc-family call in src/runtime bypasses the frame arena; allocate "
                 "packet buffers through FrameArena/FrameBuf (util/arena.hpp)");
    }
    if (std::regex_search(line, kRawByteNew)) {
      ctx.report(i, "frame-arena",
                 "raw byte-buffer new[] in src/runtime bypasses the frame arena; use "
                 "FrameBuf (util/arena.hpp) so the frame path stays zero-global-alloc");
    }
  }
}

/// State held per flow on the frame path must live in bounded structures
/// (src/flow's fixed-budget FlowTable) so adversarial flow churn cannot
/// exhaust memory — the PR 7 invariant (docs/ROBUSTNESS.md). Node-based
/// std:: maps grow without limit and allocate per insert, so they are
/// banned in the runtime tree outright; control-plane uses (a map keyed
/// by worker id, say) are bounded by construction and may state so with
/// `afflint: allow(bounded-state)` plus a reason.
void ruleBoundedState(const FileCtx& ctx) {
  if (srcSubdir(ctx.path) != "runtime") return;
  static const char* kBanned[] = {"std::unordered_map", "std::map", "std::multimap",
                                  "std::unordered_multimap"};
  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    for (const char* token : kBanned) {
      if (containsToken(ctx.v.code[i], token)) {
        ctx.report(i, "bounded-state",
                   std::string(token) + " in src/runtime grows without bound under flow churn; "
                                        "keep per-flow state in the fixed-budget FlowTable "
                                        "(flow/flow_table.hpp, docs/ROBUSTNESS.md)");
      }
    }
  }
}

void ruleGuardedMutex(const FileCtx& ctx) {
  if (srcSubdir(ctx.path).empty()) return;
  // Declarations may carry a lockdep name ("Mutex mu_{\"Class::mu_\"}" —
  // the literal is stripped from the code view, leaving "{}") and trailing
  // AFF_ACQUIRED_BEFORE/AFTER ordering declarations, which often wrap onto
  // following lines — so the scan runs on the joined code view, not per line.
  static const std::regex kDecl(
      R"((^|\n)[ \t]*(?:mutable\s+)?(?:aff\s*::\s*|affinity\s*::\s*)?Mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:\{[^}]*\})?\s*(?:AFF_ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*;)");
  std::string whole;
  for (const auto& line : ctx.v.text) {
    whole += line;
    whole += '\n';
  }
  std::string code;
  for (const auto& line : ctx.v.code) {
    code += line;
    code += '\n';
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end; it != end; ++it) {
    const std::string name = (*it)[2].str();
    const std::size_t line0 = static_cast<std::size_t>(
        std::count(code.begin(), code.begin() + it->position(2), '\n'));
    const std::regex kRef("AFF_(PT_)?GUARDED_BY\\s*\\([^)]*\\b" + name +
                          "\\b[^)]*\\)|AFF_REQUIRES(_SHARED)?\\s*\\([^)]*\\b" + name +
                          "\\b[^)]*\\)");
    if (!std::regex_search(whole, kRef)) {
      ctx.report(line0, "guarded-mutex",
                 "Mutex '" + name + "' has no AFF_GUARDED_BY / AFF_PT_GUARDED_BY / AFF_REQUIRES "
                                    "reference in this file; say what it protects");
    }
  }
}

// ------------------------------------------- lock-order / blocking-under-lock
//
// The static half of the lock-discipline layer (util/lockdep.hpp is the
// dynamic half). A lexical brace-depth scan tracks which Mutexes are held at
// each point of a file — RAII MutexLocks until their scope closes, direct
// .lock() until the matching .unlock() or scope end, AFF_REQUIRES locks for
// the annotated function's body — and every acquisition made while something
// is held becomes an edge of the acquisition graph. AFF_ACQUIRED_BEFORE /
// AFTER declarations contribute intended-order edges. checkLockOrder then
// fails on any cycle, reporting the full witness chain.
//
// Nodes are canonical mutex names: the `Mutex mu_{"Class::mu_"}` constructor
// literal where one exists (resolved file-locally, then via the same-stem
// header partner, then by tree-wide uniqueness), else `<file-stem>::<id>`.
// Known limits, chosen over false positives: acquisitions through function
// calls are invisible (declare those orders with AFF_ACQUIRED_BEFORE), and
// try_lock is not treated as an acquisition.

/// "engine" for "src/runtime/engine.cpp".
std::string fileStem(const std::string& rel_path) {
  const std::size_t slash = rel_path.find_last_of('/');
  std::string base = slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

struct NamedMutexDecl {
  std::string canonical;
  std::string rel_path;
};
/// identifier -> every `Mutex id{"Name"}` declaration seen (tree-wide when
/// built by buildLockGraph/lintTree, file-local in standalone lintFile).
using NameTable = std::map<std::string, std::vector<NamedMutexDecl>>;

void collectNamedMutexes(const std::string& rel_path, const Views& v, NameTable* table) {
  static const std::regex kNamed(
      R"re((^|[^A-Za-z0-9_])Mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*\{\s*"([^"]+)"\s*\})re");
  for (const auto& line : v.text) {
    for (std::sregex_iterator it(line.begin(), line.end(), kNamed), end; it != end; ++it)
      (*table)[(*it)[2].str()].push_back(NamedMutexDecl{(*it)[3].str(), rel_path});
  }
}

/// Trailing identifier of a lock expression: "mu" for "sh->mu", "mu_" for
/// "stacks_[i].mu_", the whole thing for "stack_mu_".
std::string lockExprId(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && !isWordChar(expr[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && isWordChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

std::string canonicalLockName(const std::string& expr, const std::string& rel_path,
                              const NameTable& table) {
  const std::string id = lockExprId(expr);
  if (id.empty()) return expr;
  const auto it = table.find(id);
  if (it != table.end()) {
    for (const auto& d : it->second)
      if (d.rel_path == rel_path) return d.canonical;
    const std::string stem = fileStem(rel_path);
    for (const auto& d : it->second)
      if (fileStem(d.rel_path) == stem) return d.canonical;
    if (it->second.size() == 1) return it->second.front().canonical;
  }
  return fileStem(rel_path) + "::" + id;
}

/// One lock the scan believes held at the current point.
struct HeldLock {
  std::string expr;       ///< source expression as written
  std::string canonical;  ///< graph node name
  std::string site;       ///< "file:line" of the acquisition
  int release_depth;      ///< popped once brace depth drops below this
  std::string raii_var;   ///< MutexLock variable name; "" for direct/REQUIRES
  bool direct = false;    ///< explicit .lock(), releasable by .unlock()
};

void scanLockDiscipline(const FileCtx& ctx, const NameTable& table, LockGraph* g) {
  static const std::regex kMutexLockDecl(
      R"(MutexLock\s+([A-Za-z_][A-Za-z0-9_]*)\s*[({]\s*([^(){};]+?)\s*[)}])");
  static const std::regex kNamedDeclSkip(R"(Mutex\s+[A-Za-z_][A-Za-z0-9_]*\s*\{[^}]*\})");
  static const std::regex kDirectLock(
      R"(([A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*)*)\s*\.\s*lock\s*\(\s*\))");
  static const std::regex kUnlock(
      R"(([A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*)*)\s*\.\s*unlock\s*\(\s*\))");
  static const std::regex kRequires(R"(AFF_REQUIRES(?:_SHARED)?\s*\(([^)]*)\))");
  static const std::regex kWait(R"(\.\s*wait(?:_for|_until)?\s*\()");
  static const std::regex kSleep(R"(this_thread\s*::\s*sleep_(?:for|until)|\.\s*pause\s*\()");

  enum Kind { kSkip, kAcqRaii, kAcqDirect, kRelease, kRequiresEv, kWaitEv, kSleepEv };
  struct Event {
    std::size_t begin, end;
    Kind kind;
    std::string a, b;  // kAcqRaii: var, expr; others: expression/args
  };

  int depth = 0;
  std::vector<HeldLock> held;
  std::vector<std::pair<std::string, std::size_t>> pending;  // REQUIRES expr, line

  const auto canonical = [&](const std::string& expr) {
    return canonicalLockName(expr, ctx.path, table);
  };
  const auto site = [&](std::size_t line0) {
    return ctx.path + ":" + std::to_string(line0 + 1);
  };
  const auto acquire = [&](const std::string& expr, std::size_t line0,
                           const std::string& raii_var, bool direct) {
    HeldLock acq{expr, canonical(expr), site(line0), depth, raii_var, direct};
    if (!ctx.supp.allows(static_cast<int>(line0), "lock-order")) {
      for (const HeldLock& h : held)
        g->edges.push_back(LockEdge{h.canonical, acq.canonical, h.site, acq.site, false});
    }
    held.push_back(std::move(acq));
  };

  for (std::size_t i = 0; i < ctx.v.code.size(); ++i) {
    const std::string& line = ctx.v.code[i];

    std::vector<Event> events;
    const auto collect = [&](const std::regex& re, Kind kind) {
      for (std::sregex_iterator it(line.begin(), line.end(), re), end; it != end; ++it) {
        Event e{static_cast<std::size_t>(it->position(0)),
                static_cast<std::size_t>(it->position(0) + it->length(0)), kind, "", ""};
        if (kind == kAcqRaii) {
          e.a = (*it)[1].str();
          e.b = (*it)[2].str();
        } else if (kind == kAcqDirect || kind == kRelease || kind == kRequiresEv) {
          e.a = (*it)[1].str();
        } else if (kind == kWaitEv) {
          // First argument: up to the first top-level ',' or ')' after the
          // '(' the match ends on; "" (lenient: no check) if it spans lines.
          std::size_t c = e.end;
          int nest = 0;
          while (c < line.size() && !(nest == 0 && (line[c] == ',' || line[c] == ')'))) {
            if (line[c] == '(') ++nest;
            if (line[c] == ')') --nest;
            ++c;
          }
          if (c < line.size()) {
            std::string arg = line.substr(e.end, c - e.end);
            const std::size_t b = arg.find_first_not_of(" \t");
            const std::size_t f = arg.find_last_not_of(" \t");
            e.a = b == std::string::npos ? "" : arg.substr(b, f - b + 1);
          }
        }
        events.push_back(std::move(e));
      }
    };
    collect(kNamedDeclSkip, kSkip);
    collect(kMutexLockDecl, kAcqRaii);
    collect(kDirectLock, kAcqDirect);
    collect(kUnlock, kRelease);
    collect(kRequires, kRequiresEv);
    collect(kWait, kWaitEv);
    collect(kSleep, kSleepEv);
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.begin < b.begin; });

    std::size_t ev = 0;
    for (std::size_t c = 0; c <= line.size();) {
      if (ev < events.size() && events[ev].begin == c) {
        const Event& e = events[ev++];
        switch (e.kind) {
          case kSkip:
            break;
          case kAcqRaii:
            acquire(e.b, i, e.a, false);
            break;
          case kAcqDirect:
            acquire(e.a, i, "", true);
            break;
          case kRelease:
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
              if (it->raii_var == e.a || ((it->direct || it->raii_var.empty()) && it->expr == e.a)) {
                held.erase(std::next(it).base());
                break;
              }
            }
            break;
          case kRequiresEv: {
            std::istringstream in(e.a);
            std::string arg;
            while (std::getline(in, arg, ',')) {
              const std::size_t b = arg.find_first_not_of(" \t");
              if (b == std::string::npos) continue;
              const std::size_t f = arg.find_last_not_of(" \t");
              arg = arg.substr(b, f - b + 1);
              if (!arg.empty() && arg.front() != '!') pending.emplace_back(arg, i);
            }
            break;
          }
          case kWaitEv:
            if (!e.a.empty()) {
              const std::string target = canonical(e.a);
              for (const HeldLock& h : held) {
                if (h.canonical == target) continue;
                ctx.report(i, "blocking-under-lock",
                           "CondVar wait on '" + target + "' while also holding '" + h.canonical +
                               "' (acquired at " + h.site +
                               "); a waiter may hold only the condvar's own mutex — anything "
                               "else stays locked for the whole wait");
              }
            }
            break;
          case kSleepEv:
            if (!held.empty()) {
              const HeldLock& h = held.back();
              ctx.report(i, "blocking-under-lock",
                         "blocking sleep/backoff while holding '" + h.canonical +
                             "' (acquired at " + h.site +
                             "); release the lock before blocking — a sleeping holder stalls "
                             "every thread behind it");
            }
            break;
        }
        // Events with brace-bearing spans (initializer braces, MutexLock's
        // brace form) are skipped whole so those braces don't count as
        // scopes; call-shaped events just resume after the match.
        c = e.kind == kSkip || e.kind == kAcqRaii ? e.end : std::max(e.end, c + 1);
        while (ev < events.size() && events[ev].begin < c) ++ev;
        continue;
      }
      if (c == line.size()) break;
      const char ch = line[c];
      if (ch == '{') {
        ++depth;
        for (const auto& [expr, line0] : pending)
          held.push_back(HeldLock{expr, canonical(expr), site(line0), depth, "", false});
        pending.clear();
      } else if (ch == '}') {
        if (depth > 0) --depth;
        while (!held.empty() && held.back().release_depth > depth) held.pop_back();
      } else if (ch == ';') {
        pending.clear();  // AFF_REQUIRES on a declaration without a body
      }
      ++c;
    }
  }
}

/// AFF_ACQUIRED_BEFORE/AFTER declarations -> intended-order edges. Runs over
/// the joined code view so a declaration's argument list may wrap lines; the
/// subject is the `Mutex <id>` declared in the same statement.
void extractDeclaredOrders(const FileCtx& ctx, const NameTable& table, LockGraph* g) {
  std::string joined;
  for (const auto& l : ctx.v.code) {
    joined += l;
    joined += '\n';
  }
  static const std::regex kMacro(R"(AFF_ACQUIRED_(BEFORE|AFTER)\s*\()");
  static const std::regex kSubject(R"((^|[^A-Za-z0-9_])Mutex\s+([A-Za-z_][A-Za-z0-9_]*))");
  for (std::sregex_iterator it(joined.begin(), joined.end(), kMacro), end; it != end; ++it) {
    const bool before = (*it)[1].str() == "BEFORE";
    const std::size_t open = static_cast<std::size_t>(it->position(0) + it->length(0));
    const std::size_t close = joined.find(')', open);
    if (close == std::string::npos) continue;
    const auto line0 = static_cast<std::size_t>(
        std::count(joined.begin(), joined.begin() + it->position(0), '\n'));
    if (ctx.supp.allows(static_cast<int>(line0), "lock-order")) continue;
    std::size_t stmt = joined.rfind(';', static_cast<std::size_t>(it->position(0)));
    stmt = stmt == std::string::npos ? 0 : stmt + 1;
    const std::string head = joined.substr(stmt, static_cast<std::size_t>(it->position(0)) - stmt);
    std::string subject_id;
    for (std::sregex_iterator s(head.begin(), head.end(), kSubject), e2; s != e2; ++s)
      subject_id = (*s)[2].str();
    if (subject_id.empty()) continue;
    const std::string subject = canonicalLockName(subject_id, ctx.path, table);
    const std::string site = ctx.path + ":" + std::to_string(line0 + 1);
    std::istringstream in(joined.substr(open, close - open));
    std::string arg;
    while (std::getline(in, arg, ',')) {
      std::string t;
      for (const char c : arg)
        if (c != ' ' && c != '\t' && c != '\n') t += c;
      if (t.empty()) continue;
      if (before) {
        g->edges.push_back(LockEdge{subject, t, site, site, true});
      } else {
        g->edges.push_back(LockEdge{t, subject, site, site, true});
      }
    }
  }
}

bool lockRulesApply(const std::string& rel_path) {
  return startsWith(rel_path, "src/") || startsWith(rel_path, "tools/") ||
         startsWith(rel_path, "bench/");
}

/// Shared by lintFile (standalone: per-file name table, per-file cycle
/// check) and lintTree/buildLockGraph (tree-wide table, merged graph checked
/// once by the caller).
void runLockRules(const FileCtx& ctx, const NameTable* tree_table, LockGraph* graph_out) {
  if (!lockRulesApply(ctx.path)) return;
  NameTable local;
  if (tree_table == nullptr) collectNamedMutexes(ctx.path, ctx.v, &local);
  const NameTable& table = tree_table != nullptr ? *tree_table : local;
  LockGraph g;
  scanLockDiscipline(ctx, table, &g);
  extractDeclaredOrders(ctx, table, &g);
  if (graph_out != nullptr) {
    mergeLockGraph(graph_out, g);
  } else {
    auto findings = checkLockOrder(g);
    ctx.out->insert(ctx.out->end(), std::make_move_iterator(findings.begin()),
                    std::make_move_iterator(findings.end()));
  }
}

// ----------------------------------------------------------- tree reading

/// Reads every lintable file under root/rel_roots, sorted by rel path.
/// Unreadable entries become io-error findings.
std::vector<std::pair<std::string, std::string>> readTree(
    const std::string& root, const std::vector<std::string>& rel_roots,
    std::vector<Finding>* io_errors) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& rel : rel_roots) {
    const fs::path base = fs::path(root) / rel;
    if (!fs::exists(base)) {
      io_errors->push_back(Finding{rel, 0, "io-error", "no such directory under lint root"});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      const std::string rel_path = fs::relative(entry.path(), fs::path(root)).generic_string();
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        io_errors->push_back(Finding{rel_path, 0, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.emplace_back(rel_path, buf.str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> lintFileImpl(const std::string& rel_path, const std::string& content,
                                  const NameTable* tree_table, LockGraph* graph_out) {
  std::vector<Finding> out;
  const Views v = preprocess(content);
  FileCtx ctx{rel_path, v, scanSuppressions(v.raw), &out};
  ruleMetricName(ctx);
  ruleNondeterminism(ctx);
  ruleProtoCheck(ctx);
  ruleLayering(ctx);
  ruleRawMutex(ctx);
  ruleGuardedMutex(ctx);
  ruleFrameArena(ctx);
  ruleBoundedState(ctx);
  runLockRules(ctx, tree_table, graph_out);
  return out;
}

void sortFindings(std::vector<Finding>* out) {
  std::sort(out->begin(), out->end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace

// ----------------------------------------------------------------- public

const std::vector<std::string>& ruleNames() {
  static const std::vector<std::string> kRules = {
      "metric-name", "nondeterminism", "proto-check",   "layering",
      "raw-mutex",   "guarded-mutex",  "frame-arena",   "bounded-state",
      "lock-order",  "blocking-under-lock"};
  return kRules;
}

bool validMetricName(const std::string& literal, std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (literal.empty()) return fail("empty name");
  for (const char c : literal) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.')) {
      return fail(std::string("character '") + c + "' outside [a-z0-9_.]");
    }
  }
  // Leading/trailing dots mark concatenation fragments ("sim.proc.",
  // ".queue_depth_avg"); the surrounding pieces carry the rest of the name.
  const bool anchored = literal.front() != '.';
  std::size_t b = 0;
  std::size_t e = literal.size();
  while (b < e && literal[b] == '.') ++b;
  while (e > b && literal[e - 1] == '.') --e;
  const std::string core = literal.substr(b, e - b);
  if (core.empty()) return true;  // pure "." separator
  std::vector<std::string> segments;
  std::string seg;
  std::istringstream in(core);
  while (std::getline(in, seg, '.')) segments.push_back(seg);
  for (const auto& s : segments) {
    if (s.empty()) return fail("empty path segment (\"..\")");
    if (s.front() == '_') return fail("segment \"" + s + "\" starts with '_'");
  }
  if (anchored && metricDomains().count(segments.front()) == 0) {
    return fail("unknown domain \"" + segments.front() +
                "\" (expected sim/sweep/engine/chaos/bench/net/sched/rt)");
  }
  return true;
}

std::vector<Finding> lintFile(const std::string& rel_path, const std::string& content) {
  return lintFileImpl(rel_path, content, nullptr, nullptr);
}

std::vector<Finding> lintTree(const std::string& root,
                              const std::vector<std::string>& rel_roots) {
  std::vector<Finding> out;
  const auto files = readTree(root, rel_roots, &out);

  // Pass 1: tree-wide named-mutex table, so a .cpp acquiring a lock its
  // header declares resolves to the declared canonical name.
  NameTable table;
  for (const auto& [rel_path, content] : files)
    collectNamedMutexes(rel_path, preprocess(content), &table);

  // Pass 2: per-file rules; lock edges accumulate into one global graph,
  // checked once so a cross-file inversion is a single finding with the
  // full witness chain.
  LockGraph graph;
  for (const auto& [rel_path, content] : files) {
    auto findings = lintFileImpl(rel_path, content, &table, &graph);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  auto order = checkLockOrder(graph);
  out.insert(out.end(), std::make_move_iterator(order.begin()),
             std::make_move_iterator(order.end()));

  // Satellite direction of metric-name: documented names must still exist.
  const std::filesystem::path doc = std::filesystem::path(root) / "docs" / "OBSERVABILITY.md";
  std::ifstream doc_in(doc, std::ios::binary);
  if (doc_in) {
    std::ostringstream buf;
    buf << doc_in.rdbuf();
    std::set<std::string> vocab;
    for (const auto& [rel_path, content] : files) addMetricVocabulary(content, &vocab);
    auto stale = checkMetricDocs("docs/OBSERVABILITY.md", buf.str(), vocab);
    out.insert(out.end(), std::make_move_iterator(stale.begin()),
               std::make_move_iterator(stale.end()));
  }

  sortFindings(&out);
  return out;
}

LockGraph extractLockEdges(const std::string& rel_path, const std::string& content) {
  LockGraph g;
  if (!lockRulesApply(rel_path)) return g;
  std::vector<Finding> sink;  // blocking-under-lock findings, not this API's output
  const Views v = preprocess(content);
  FileCtx ctx{rel_path, v, scanSuppressions(v.raw), &sink};
  NameTable local;
  collectNamedMutexes(rel_path, v, &local);
  scanLockDiscipline(ctx, local, &g);
  extractDeclaredOrders(ctx, local, &g);
  return g;
}

void mergeLockGraph(LockGraph* a, const LockGraph& b) {
  std::set<std::pair<std::string, std::string>> have;
  for (const auto& e : a->edges) have.emplace(e.from, e.to);
  for (const auto& e : b.edges)
    if (have.emplace(e.from, e.to).second) a->edges.push_back(e);
}

std::vector<Finding> checkLockOrder(const LockGraph& graph) {
  std::vector<Finding> out;
  const auto findingAt = [&](const std::string& site, std::string message) {
    const std::size_t colon = site.find_last_of(':');
    Finding f;
    f.file = site.substr(0, colon);
    f.line = colon == std::string::npos ? 0 : std::atoi(site.c_str() + colon + 1);
    f.rule = "lock-order";
    f.message = std::move(message);
    out.push_back(std::move(f));
  };
  const auto describe = [](const LockEdge& e) {
    if (e.declared)
      return e.from + " before " + e.to + " declared at " + e.to_site;
    return e.to + " acquired at " + e.to_site + " while holding " + e.from + " (acquired at " +
           e.from_site + ")";
  };

  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const auto& e : graph.edges) {
    if (e.from == e.to) {
      findingAt(e.to_site, "nested acquisition of '" + e.from +
                               "': an instance is already held (acquired at " + e.from_site +
                               ") — two instances of one lock class have no defined order; "
                               "restructure or declare the order explicitly");
    } else {
      adj[e.from].push_back(&e);
    }
  }

  // BFS edge path from->to; empty when unreachable.
  const auto path = [&](const std::string& from,
                        const std::string& to) -> std::vector<const LockEdge*> {
    std::map<std::string, const LockEdge*> via;
    std::vector<std::string> queue{from};
    via[from] = nullptr;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const auto it = adj.find(queue[i]);
      if (it == adj.end()) continue;
      for (const LockEdge* e : it->second) {
        if (via.emplace(e->to, e).second) queue.push_back(e->to);
      }
    }
    std::vector<const LockEdge*> chain;
    if (via.find(to) == via.end()) return chain;
    for (std::string cur = to; cur != from; cur = via[cur]->from) chain.push_back(via[cur]);
    std::reverse(chain.begin(), chain.end());
    return chain;
  };

  // Each cycle is reported once (keyed by its node set), witnessed by the
  // edge that closes it plus the return path — every hop file:line'd.
  std::set<std::string> reported;
  for (const auto& e : graph.edges) {
    if (e.from == e.to) continue;
    const auto back = path(e.to, e.from);
    if (back.empty()) continue;
    std::set<std::string> nodes{e.from, e.to};
    for (const LockEdge* b : back) nodes.insert(b->to);
    std::string key;
    for (const auto& n : nodes) key += n + "|";
    if (!reported.insert(key).second) continue;
    std::string cycle = e.from + " -> " + e.to;
    for (const LockEdge* b : back) cycle += " -> " + b->to;
    std::string message = "lock-order cycle (" + cycle + "); witness: " + describe(e);
    for (const LockEdge* b : back) message += "; " + describe(*b);
    findingAt(e.to_site, std::move(message));
  }
  sortFindings(&out);
  return out;
}

LockGraph buildLockGraph(const std::string& root, const std::vector<std::string>& rel_roots) {
  std::vector<Finding> sink;
  const auto files = readTree(root, rel_roots, &sink);
  NameTable table;
  for (const auto& [rel_path, content] : files)
    collectNamedMutexes(rel_path, preprocess(content), &table);
  LockGraph graph;
  for (const auto& [rel_path, content] : files) {
    std::vector<Finding> per_file_sink;
    const Views v = preprocess(content);
    FileCtx ctx{rel_path, v, scanSuppressions(v.raw), &per_file_sink};
    if (!lockRulesApply(rel_path)) continue;
    LockGraph g;
    scanLockDiscipline(ctx, table, &g);
    extractDeclaredOrders(ctx, table, &g);
    mergeLockGraph(&graph, g);
  }
  return graph;
}

void writeLockGraphDot(std::FILE* out, const LockGraph& graph) {
  std::fprintf(out, "digraph lock_order {\n  rankdir=LR;\n");
  for (const auto& e : graph.edges) {
    std::fprintf(out, "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n", e.from.c_str(), e.to.c_str(),
                 e.to_site.c_str(), e.declared ? ", style=dashed" : "");
  }
  std::fprintf(out, "}\n");
}

void writeLockGraphJson(std::FILE* out, const LockGraph& graph) {
  std::fprintf(out, "{\n  \"edges\": [\n");
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const auto& e = graph.edges[i];
    std::fprintf(out,
                 "    {\"from\": \"%s\", \"to\": \"%s\", \"from_site\": \"%s\", "
                 "\"to_site\": \"%s\", \"declared\": %s}%s\n",
                 obs::jsonEscape(e.from).c_str(), obs::jsonEscape(e.to).c_str(),
                 obs::jsonEscape(e.from_site).c_str(), obs::jsonEscape(e.to_site).c_str(),
                 e.declared ? "true" : "false", i + 1 < graph.edges.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void addMetricVocabulary(const std::string& content, std::set<std::string>* vocab) {
  static const std::regex kLiteral(R"re("([^"]*)")re");
  const Views v = preprocess(content);
  for (const auto& line : v.text) {
    for (std::sregex_iterator it(line.begin(), line.end(), kLiteral), end; it != end; ++it) {
      const std::string literal = (*it)[1].str();
      if (literal.empty()) continue;
      vocab->insert(literal);
      std::istringstream in(literal);
      std::string seg;
      while (std::getline(in, seg, '.'))
        if (!seg.empty()) vocab->insert(seg);
    }
  }
}

std::vector<Finding> checkMetricDocs(const std::string& doc_rel_path,
                                     const std::string& doc_content,
                                     const std::set<std::string>& vocab) {
  std::vector<Finding> out;
  std::vector<std::string> lines;
  {
    std::string line;
    std::istringstream in(doc_content);
    while (std::getline(in, line)) lines.push_back(line);
  }
  const Suppressions supp = scanSuppressions(lines);

  const auto isNameChar = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.' ||
           c == '<' || c == '>' || c == '*';
  };
  // Expand "{a,b}" alternation groups into concrete names.
  const auto expand = [](const std::string& name) {
    std::vector<std::string> done{""};
    for (std::size_t i = 0; i < name.size();) {
      if (name[i] == '{') {
        const std::size_t close = name.find('}', i);
        if (close == std::string::npos) return std::vector<std::string>{};
        std::vector<std::string> alts;
        std::istringstream in(name.substr(i + 1, close - i - 1));
        std::string alt;
        while (std::getline(in, alt, ',')) alts.push_back(alt);
        std::vector<std::string> next;
        for (const auto& prefix : done)
          for (const auto& alt : alts) next.push_back(prefix + alt);
        done = std::move(next);
        i = close + 1;
      } else {
        for (auto& prefix : done) prefix += name[i];
        ++i;
      }
    }
    return done;
  };
  const auto segmentKnown = [&](const std::string& seg) {
    if (seg.empty()) return true;  // ".." artifacts of prose — not a name issue
    if (seg.front() == '<' || seg.find('*') != std::string::npos) return true;  // placeholder
    if (seg.find_first_not_of("0123456789") == std::string::npos) return true;  // index
    return vocab.count(seg) != 0;
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (std::size_t c = 0; c < line.size();) {
      if (!((line[c] >= 'a' && line[c] <= 'z'))) {
        ++c;
        continue;
      }
      if (c > 0 && (isWordChar(line[c - 1]) || line[c - 1] == '.')) {
        while (c < line.size() && isNameChar(line[c])) ++c;
        continue;
      }
      // Candidate token: name chars, with {...} groups consumed whole.
      std::size_t e = c;
      while (e < line.size()) {
        if (isNameChar(line[e])) {
          ++e;
        } else if (line[e] == '{') {
          const std::size_t close = line.find('}', e);
          if (close == std::string::npos) break;
          e = close + 1;
        } else {
          break;
        }
      }
      std::string token = line.substr(c, e - c);
      c = e;
      while (!token.empty() && (token.back() == '.' || token.back() == '*')) {
        if (token.back() == '*' && token.size() >= 2 && token[token.size() - 2] == '.') break;
        token.pop_back();  // sentence-final "." / stray "*"
      }
      const std::size_t dot = token.find('.');
      if (dot == std::string::npos) continue;
      if (metricDomains().count(token.substr(0, dot)) == 0) continue;
      for (const std::string& name : expand(token)) {
        std::string bad;
        std::istringstream in(name);
        std::string seg;
        while (std::getline(in, seg, '.')) {
          if (!segmentKnown(seg)) {
            bad = seg;
            break;
          }
        }
        if (bad.empty()) continue;
        if (supp.allows(static_cast<int>(i), "metric-name")) continue;
        out.push_back(Finding{
            doc_rel_path, static_cast<int>(i) + 1, "metric-name",
            "documented metric \"" + name + "\" looks stale: segment \"" + bad +
                "\" appears in no string literal anywhere in the tree — either the metric was "
                "renamed/removed (update the doc) or it is documented ahead of registration"});
      }
    }
  }
  sortFindings(&out);
  return out;
}

void writeFindingsJson(std::FILE* out, const std::vector<Finding>& findings) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::fprintf(out, "  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}%s\n",
                 obs::jsonEscape(f.file).c_str(), f.line, obs::jsonEscape(f.rule).c_str(),
                 obs::jsonEscape(f.message).c_str(), i + 1 < findings.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
}

}  // namespace affinity::lint
