// lint.hpp — afflint: repo-specific invariant checks that generic static
// analysis cannot express (docs/STATIC_ANALYSIS.md).
//
// The rules, each scoped to the part of the tree where its invariant holds:
//
//   metric-name    — string literals registered with obs::MetricsRegistry
//                    follow the docs/OBSERVABILITY.md naming scheme
//                    (dotted lower_snake, known domain as first segment).
//                    Scope: src/, tools/, bench/.
//   nondeterminism — no rand()/srand(), std::random_device, time(nullptr),
//                    system_clock or high_resolution_clock anywhere; no
//                    steady_clock (wall time) in simulation-path dirs —
//                    determinism is a tested guarantee (GoldenSeed suite).
//                    Scope: src/, tools/, bench/.
//   proto-check    — no AFF_CHECK in src/proto/: network input must become
//                    a typed DropReason, never an abort (the PR 2 rule).
//   layering       — src/ include hygiene: each subsystem may include only
//                    the layers below it (proto never includes runtime,
//                    nothing in src/ includes bench/tools/tests, ...).
//   raw-mutex      — concurrent trees (src/runtime, src/obs, src/core,
//                    src/lint) use the annotated aff primitives
//                    (util/mutex.hpp), not raw std::mutex & friends, so
//                    clang -Wthread-safety sees every lock.
//   guarded-mutex  — every `Mutex foo_;` declaration is referenced by at
//                    least one AFF_GUARDED_BY / AFF_PT_GUARDED_BY /
//                    AFF_REQUIRES in the same file: a mutex that guards
//                    nothing on record guards nothing in review.
//   frame-arena    — no malloc-family calls or raw byte-buffer new[] in
//                    src/runtime: the steady-state frame path allocates
//                    through FrameArena/FrameBuf only (util/arena.hpp).
//   bounded-state  — no node-based std:: maps (unordered_map, map, ...)
//                    in src/runtime: per-flow state on the frame path must
//                    live in the fixed-budget FlowTable so adversarial flow
//                    churn cannot exhaust memory (docs/ROBUSTNESS.md).
//
// Comments and string literals are stripped before token rules run, so
// writing about a banned primitive is fine; using one is not. A line (or
// the line directly above) containing `afflint: allow(<rule>)` suppresses
// that rule there — always append a reason, the suppression is reviewable
// precisely because it is greppable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace affinity::lint {

/// One rule violation at a file:line.
struct Finding {
  std::string file;  ///< path relative to the lint root, '/'-separated
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// All rule names, for --list-rules and corpus coverage checks.
const std::vector<std::string>& ruleNames();

/// Lints one file's `content` as if it lived at `rel_path` (repo-relative,
/// '/'-separated). Rule scoping keys off the path, so corpus fixtures can
/// impersonate any tree location.
std::vector<Finding> lintFile(const std::string& rel_path, const std::string& content);

/// Walks `rel_roots` (e.g. {"src", "tools", "bench"}) under `root`, linting
/// every *.hpp/*.cpp/*.h/*.cc file. Findings are sorted (file, line, rule).
/// Unreadable files yield a finding under rule "io-error".
std::vector<Finding> lintTree(const std::string& root, const std::vector<std::string>& rel_roots);

/// Validates a metric-name string literal against the OBSERVABILITY.md
/// scheme. Literals may be name fragments from concatenation: a leading or
/// trailing '.' marks a prefix/suffix piece, which skips the domain check.
/// On failure, `why` (if non-null) explains.
bool validMetricName(const std::string& literal, std::string* why);

/// Machine-readable export: a JSON array of {file, line, rule, message}.
void writeFindingsJson(std::FILE* out, const std::vector<Finding>& findings);

}  // namespace affinity::lint
