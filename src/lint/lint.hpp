// lint.hpp — afflint: repo-specific invariant checks that generic static
// analysis cannot express (docs/STATIC_ANALYSIS.md).
//
// The rules, each scoped to the part of the tree where its invariant holds:
//
//   metric-name    — string literals registered with obs::MetricsRegistry
//                    follow the docs/OBSERVABILITY.md naming scheme
//                    (dotted lower_snake, known domain as first segment).
//                    Scope: src/, tools/, bench/.
//   nondeterminism — no rand()/srand(), std::random_device, time(nullptr),
//                    system_clock or high_resolution_clock anywhere; no
//                    steady_clock (wall time) in simulation-path dirs —
//                    determinism is a tested guarantee (GoldenSeed suite).
//                    Scope: src/, tools/, bench/.
//   proto-check    — no AFF_CHECK in src/proto/: network input must become
//                    a typed DropReason, never an abort (the PR 2 rule).
//   layering       — src/ include hygiene: each subsystem may include only
//                    the layers below it (proto never includes runtime,
//                    nothing in src/ includes bench/tools/tests, ...).
//   raw-mutex      — concurrent trees (src/runtime, src/obs, src/core,
//                    src/lint) use the annotated aff primitives
//                    (util/mutex.hpp), not raw std::mutex & friends, so
//                    clang -Wthread-safety sees every lock.
//   guarded-mutex  — every `Mutex foo_;` declaration is referenced by at
//                    least one AFF_GUARDED_BY / AFF_PT_GUARDED_BY /
//                    AFF_REQUIRES in the same file: a mutex that guards
//                    nothing on record guards nothing in review.
//   frame-arena    — no malloc-family calls or raw byte-buffer new[] in
//                    src/runtime: the steady-state frame path allocates
//                    through FrameArena/FrameBuf only (util/arena.hpp).
//   bounded-state  — no node-based std:: maps (unordered_map, map, ...)
//                    in src/runtime: per-flow state on the frame path must
//                    live in the fixed-budget FlowTable so adversarial flow
//                    churn cannot exhaust memory (docs/ROBUSTNESS.md).
//   lock-order     — nested Mutex acquisitions (a MutexLock/lock() in a
//                    scope already holding a lock, including AFF_REQUIRES
//                    held-on-entry locks) become edges of an acquisition
//                    graph; AFF_ACQUIRED_BEFORE/AFTER declarations add
//                    intended-order edges. Any cycle — two sites that nest
//                    the same pair of locks in opposite orders, or an
//                    acquisition contradicting a declaration — fails with
//                    a file:line-by-file:line witness chain. Per-file in
//                    lintFile; repo-global (edges merged across files) in
//                    lintTree. Scope: src/, tools/, bench/.
//   blocking-under-lock
//                  — no CondVar::wait*/Backoff::pause/sleep_for/sleep_until
//                    while holding a Mutex (for waits: other than the one
//                    the wait itself releases). A blocked holder stalls
//                    every thread behind that lock — the dead-consumer
//                    kBlock hang class. Scope: src/, tools/, bench/.
//
// The lock-order pass is the static half of the lock-discipline layer;
// util/lockdep.hpp (AFF_LOCKDEP builds) observes the same graph at run time
// and tests/lockdep_test.cpp cross-checks the two.
//
// Comments and string literals are stripped before token rules run, so
// writing about a banned primitive is fine; using one is not. A line (or
// the line directly above) containing `afflint: allow(<rule>)` suppresses
// that rule there — always append a reason, the suppression is reviewable
// precisely because it is greppable.
#pragma once

#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace affinity::lint {

/// One rule violation at a file:line.
struct Finding {
  std::string file;  ///< path relative to the lint root, '/'-separated
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// All rule names, for --list-rules and corpus coverage checks.
const std::vector<std::string>& ruleNames();

/// Lints one file's `content` as if it lived at `rel_path` (repo-relative,
/// '/'-separated). Rule scoping keys off the path, so corpus fixtures can
/// impersonate any tree location.
std::vector<Finding> lintFile(const std::string& rel_path, const std::string& content);

/// Walks `rel_roots` (e.g. {"src", "tools", "bench"}) under `root`, linting
/// every *.hpp/*.cpp/*.h/*.cc file. Findings are sorted (file, line, rule).
/// Unreadable files yield a finding under rule "io-error".
std::vector<Finding> lintTree(const std::string& root, const std::vector<std::string>& rel_roots);

/// Validates a metric-name string literal against the OBSERVABILITY.md
/// scheme. Literals may be name fragments from concatenation: a leading or
/// trailing '.' marks a prefix/suffix piece, which skips the domain check.
/// On failure, `why` (if non-null) explains.
bool validMetricName(const std::string& literal, std::string* why);

/// Machine-readable export: a JSON array of {file, line, rule, message}.
void writeFindingsJson(std::FILE* out, const std::vector<Finding>& findings);

// ------------------------------------------------------------- lock-order

/// One edge of the static acquisition graph: `from` is held (or declared
/// earlier) when `to` is acquired (or declared later). Nodes are canonical
/// mutex names — the `Mutex mu_{"Class::mu_"}` constructor literal where one
/// exists, else `<file-stem>::<identifier>` — the same names util/lockdep.hpp
/// keys its dynamic graph by.
struct LockEdge {
  std::string from;
  std::string to;
  std::string from_site;  ///< "file:line" where `from` was acquired/declared
  std::string to_site;    ///< "file:line" of the acquisition/declaration
  bool declared = false;  ///< from AFF_ACQUIRED_BEFORE/AFTER, not observed code
};

struct LockGraph {
  std::vector<LockEdge> edges;
};

/// Extracts one file's acquisition + declaration edges. Standalone files
/// resolve mutex expressions against their own named declarations only;
/// buildLockGraph resolves across the whole tree.
LockGraph extractLockEdges(const std::string& rel_path, const std::string& content);

/// Appends b's edges to a, dropping (from, to) pairs a already has (first
/// witness wins; files are visited in sorted order, so this is stable).
void mergeLockGraph(LockGraph* a, const LockGraph& b);

/// Cycle / contradiction findings over a (merged) graph: every self-edge and
/// every distinct cycle, each with the full witness chain. Rule: lock-order.
std::vector<Finding> checkLockOrder(const LockGraph& graph);

/// Walks rel_roots like lintTree and returns the repo-global merged graph
/// (mutex names resolved tree-wide: file-local declaration, then same-stem
/// header partner, then globally unique, else `<file-stem>::<id>`).
LockGraph buildLockGraph(const std::string& root, const std::vector<std::string>& rel_roots);

/// Graphviz DOT export (observed edges solid, declared edges dashed) — the
/// source of docs/STATIC_ANALYSIS.md's lock-hierarchy table.
void writeLockGraphDot(std::FILE* out, const LockGraph& graph);

/// JSON export: {"edges": [{from, to, from_site, to_site, declared}, ...]}.
void writeLockGraphJson(std::FILE* out, const LockGraph& graph);

// ---------------------------------------------------- metric-doc (satellite)

/// Adds every string literal of `content` (and each dot-split segment of it)
/// to `vocab` — the registered-name vocabulary checkMetricDocs matches
/// documented metric names against.
void addMetricVocabulary(const std::string& content, std::set<std::string>* vocab);

/// The reverse direction of the metric-name rule: parses documentation text
/// for metric names (dotted tokens whose first segment is a known domain),
/// expands `{a,b}` alternations, treats `<x>` / `*` / numeric segments as
/// wildcards, and flags names with a concrete segment that appears in no
/// tree string literal — a documented-but-never-registered (stale) name.
/// Findings carry rule "metric-name" at `doc_rel_path`:line.
std::vector<Finding> checkMetricDocs(const std::string& doc_rel_path,
                                     const std::string& doc_content,
                                     const std::set<std::string>& vocab);

}  // namespace affinity::lint
