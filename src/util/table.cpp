#include "util/table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace affinity {

TableWriter::TableWriter(std::vector<std::string> columns, bool csv, int precision)
    : columns_(std::move(columns)), csv_(csv), precision_(precision) {
  AFF_CHECK(!columns_.empty());
}

void TableWriter::beginRow() { rows_.emplace_back(); }

void TableWriter::add(double value) {
  AFF_CHECK(!rows_.empty());
  rows_.back().push_back(format(value));
}

void TableWriter::addText(std::string text) {
  AFF_CHECK(!rows_.empty());
  rows_.back().push_back(std::move(text));
}

void TableWriter::addRow(const std::vector<double>& values) {
  beginRow();
  for (double v : values) add(v);
}

std::string TableWriter::format(double v) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision_, v);
  return buf;
}

void TableWriter::print(std::FILE* out) const {
  if (csv_) {
    for (std::size_t c = 0; c < columns_.size(); ++c)
      std::fprintf(out, "%s%s", columns_[c].c_str(), c + 1 < columns_.size() ? "," : "\n");
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c)
        std::fprintf(out, "%s%s", row[c].c_str(), c + 1 < row.size() ? "," : "\n");
    }
    return;
  }
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::fprintf(out, "%-*s%s", static_cast<int>(width[c]), columns_[c].c_str(),
                 c + 1 < columns_.size() ? "  " : "\n");
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::fprintf(out, "%s%s", std::string(width[c], '-').c_str(),
                 c + 1 < columns_.size() ? "  " : "\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%-*s%s", static_cast<int>(c < width.size() ? width[c] : 0),
                   row[c].c_str(), c + 1 < row.size() ? "  " : "\n");
  }
}

}  // namespace affinity
