#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace affinity {

namespace cli_detail {

namespace {
template <typename T>
bool from_chars_all(std::string_view text, T& out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}
}  // namespace

bool parse_value(std::string_view text, int& out) { return from_chars_all(text, out); }
bool parse_value(std::string_view text, std::int64_t& out) { return from_chars_all(text, out); }
bool parse_value(std::string_view text, std::uint64_t& out) { return from_chars_all(text, out); }

bool parse_value(std::string_view text, double& out) {
  // std::from_chars for double is available in libstdc++ 11+.
  return from_chars_all(text, out);
}

bool parse_value(std::string_view text, bool& out) {
  if (text == "true" || text == "1" || text.empty()) {
    out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parse_value(std::string_view text, std::string& out) {
  out.assign(text);
  return true;
}

std::string repr(int v) { return std::to_string(v); }
std::string repr(std::int64_t v) { return std::to_string(v); }
std::string repr(std::uint64_t v) { return std::to_string(v); }
std::string repr(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}
std::string repr(bool v) { return v ? "true" : "false"; }
std::string repr(const std::string& v) { return v; }

}  // namespace cli_detail

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

bool Cli::provided(std::string_view name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.was_provided;
}

void Cli::usage_and_exit(int code) const {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out, "%s — %s\n\nflags:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, f] : flags_) {
    std::fprintf(out, "  --%-20s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                 f.default_repr.c_str());
  }
  std::exit(code);
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") usage_and_exit(0);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(), argv[i]);
      usage_and_exit(2);
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "%s: unknown flag '--%.*s'\n", program_.c_str(),
                   static_cast<int>(name.size()), name.data());
      usage_and_exit(2);
    }
    Flag& f = it->second;
    if (!value) {
      if (f.is_bool) {
        value = "";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag '--%.*s' needs a value\n", program_.c_str(),
                     static_cast<int>(name.size()), name.data());
        usage_and_exit(2);
      }
    }
    if (!f.parse_into(f.storage, *value)) {
      std::fprintf(stderr, "%s: bad value '%.*s' for flag '--%.*s'\n", program_.c_str(),
                   static_cast<int>(value->size()), value->data(),
                   static_cast<int>(name.size()), name.data());
      usage_and_exit(2);
    }
    f.was_provided = true;
  }
}

}  // namespace affinity
