// table.hpp — aligned text / CSV output for benchmark result series.
//
// Every bench binary reports the rows/series of one paper table or figure.
// TableWriter renders them as an aligned text table on stdout (human use)
// or as CSV (for plotting), selected at construction.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace affinity {

/// Accumulates rows of (string|double) cells under named columns and renders
/// them aligned or as CSV. Doubles are formatted with a per-table precision.
class TableWriter {
 public:
  /// `csv` selects CSV output; `precision` is digits after the decimal point
  /// for numeric cells.
  explicit TableWriter(std::vector<std::string> columns, bool csv = false,
                       int precision = 3);

  /// Starts a new row; cells are appended with add()/addText().
  void beginRow();
  /// Appends a numeric cell to the current row.
  void add(double value);
  /// Appends a text cell to the current row.
  void addText(std::string text);

  /// Convenience: append a full numeric row.
  void addRow(const std::vector<double>& values);

  /// Renders the table to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Number of completed data rows.
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  std::string format(double v) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_;
  int precision_;
};

}  // namespace affinity
