#include "util/arena.hpp"

#include <bit>
#include <new>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace affinity {

namespace {

/// All arenas ever created, kept alive for the life of the process so that
/// blocks can always reach their owner and totalStats() can sum counters.
struct Registry {
  Mutex mu{"FrameArena::Registry::mu"};
  std::vector<FrameArena*> arenas AFF_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

// The calling thread's arena, or null if this thread has never allocated.
// A free-only thread (e.g. stop() reconciling a dead worker's frames) must
// not mint an arena just to discover the block is not its own.
thread_local FrameArena* tl_arena = nullptr;

constexpr std::size_t kHeader = 16;

}  // namespace

FrameArena& FrameArena::local() {
  if (tl_arena == nullptr) {
    auto* arena = new FrameArena();
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    reg.arenas.push_back(arena);
    tl_arena = arena;
  }
  return *tl_arena;
}

std::size_t FrameArena::classFor(std::size_t bytes) noexcept {
  const std::size_t need = bytes < kMinClassBytes ? kMinClassBytes : bytes;
  const auto cls = static_cast<std::size_t>(std::countr_zero(std::bit_ceil(need))) - 6;
  AFF_CHECK(cls < kNumClasses);
  return cls;
}

std::size_t FrameArena::capacityOf(const std::uint8_t* data) noexcept {
  return static_cast<std::size_t>(
      reinterpret_cast<const BlockHeader*>(data - kHeader)->capacity);
}

void FrameArena::pushFree(std::uint8_t* data, std::size_t cls) noexcept {
  std::memcpy(data, &free_[cls], sizeof(std::uint8_t*));
  free_[cls] = data;
}

void FrameArena::drainReturns() noexcept {
  std::uint8_t* node = returns_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    std::uint8_t* next = nullptr;
    std::memcpy(&next, node, sizeof(next));
    pushFree(node, classFor(capacityOf(node)));
    node = next;
  }
}

void FrameArena::refill(std::size_t cls) {
  const std::size_t block_bytes = kMinClassBytes << cls;
  const std::size_t stride = kHeader + block_bytes;
  const std::size_t count = kSlabTargetBytes / stride != 0 ? kSlabTargetBytes / stride : 1;
  auto* slab = static_cast<std::uint8_t*>(::operator new(count * stride));
  slabs_.push_back(slab);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t* data = slab + i * stride + kHeader;
    *headerOf(data) = BlockHeader{this, block_bytes};
    pushFree(data, cls);
  }
  slab_refills_.fetch_add(1, std::memory_order_relaxed);
  bytes_reserved_.fetch_add(count * stride, std::memory_order_relaxed);
}

std::uint8_t* FrameArena::allocate(std::size_t bytes) {
  AFF_CHECK(tl_arena == this);  // owner-thread-only (see class comment)
  allocs_.fetch_add(1, std::memory_order_relaxed);
  if (bytes > kMaxClassBytes) {
    auto* raw = static_cast<std::uint8_t*>(::operator new(kHeader + bytes));
    std::uint8_t* data = raw + kHeader;
    *headerOf(data) = BlockHeader{this, bytes};
    oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
    return data;
  }
  const std::size_t cls = classFor(bytes);
  if (free_[cls] == nullptr) drainReturns();
  if (free_[cls] == nullptr) refill(cls);
  std::uint8_t* data = free_[cls];
  std::memcpy(&free_[cls], data, sizeof(std::uint8_t*));
  return data;
}

void FrameArena::deallocate(std::uint8_t* data) noexcept {
  BlockHeader* h = headerOf(data);
  FrameArena* owner = h->owner;
  owner->frees_.fetch_add(1, std::memory_order_relaxed);
  if (h->capacity > kMaxClassBytes) {
    // Oversize blocks came straight from the global allocator; return them
    // there from whichever thread holds them last.
    ::operator delete(reinterpret_cast<std::uint8_t*>(h));
    return;
  }
  if (owner == tl_arena) {
    owner->pushFree(data, classFor(static_cast<std::size_t>(h->capacity)));
    return;
  }
  // Remote free: push onto the owner's Treiber return stack.
  owner->cross_thread_returns_.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t* head = owner->returns_.load(std::memory_order_relaxed);
  do {
    std::memcpy(data, &head, sizeof(head));
  } while (!owner->returns_.compare_exchange_weak(head, data, std::memory_order_release,
                                                 std::memory_order_relaxed));
}

ArenaStats FrameArena::stats() const noexcept {
  ArenaStats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.cross_thread_returns = cross_thread_returns_.load(std::memory_order_relaxed);
  s.slab_refills = slab_refills_.load(std::memory_order_relaxed);
  s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  return s;
}

ArenaStats FrameArena::totalStats() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  ArenaStats total;
  for (const FrameArena* arena : reg.arenas) {
    const ArenaStats s = arena->stats();
    total.allocs += s.allocs;
    total.frees += s.frees;
    total.cross_thread_returns += s.cross_thread_returns;
    total.slab_refills += s.slab_refills;
    total.oversize_allocs += s.oversize_allocs;
    total.bytes_reserved += s.bytes_reserved;
  }
  return total;
}

}  // namespace affinity
