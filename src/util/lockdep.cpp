#include "util/lockdep.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

namespace affinity::lockdep {

namespace {

// One lock currently held by the calling thread.
struct Held {
  const void* obj;
  const char* name;  // nullptr for unnamed
  std::string site;  // "file:line"
};

// The tracker's own lock is a raw std::mutex on purpose: it is the innermost
// lock in the process by construction (nothing is acquired under it), and
// routing it through aff::Mutex would recurse into these hooks.
struct Graph {
  std::mutex mu;
  // (from, to) -> first-witness sites.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::string>> edges;
  std::vector<std::string> cycle_reports;
  std::size_t cycle_count = 0;
};

Graph& graph() {
  static Graph g;
  return g;
}

thread_local std::vector<Held> tl_held;

std::string siteOf(const char* file, unsigned line) {
  std::ostringstream out;
  out << (file != nullptr ? file : "?") << ":" << line;
  return out.str();
}

// Is `to` reachable from `from` over the current edge set? (Called with
// graph().mu held; the graph is small — tens of nodes — so a plain DFS is
// fine.)
bool reachable(const Graph& g, const std::string& from, const std::string& to) {
  std::vector<const std::string*> stack{&from};
  std::set<std::string> seen{from};
  while (!stack.empty()) {
    const std::string* cur = stack.back();
    stack.pop_back();
    if (*cur == to) return true;
    for (const auto& [key, sites] : g.edges) {
      if (key.first == *cur && seen.insert(key.second).second) stack.push_back(&key.second);
    }
  }
  return false;
}

// Shortest textual path from→to for the witness chain (BFS over edges).
std::vector<std::string> pathBetween(const Graph& g, const std::string& from,
                                     const std::string& to) {
  std::map<std::string, std::string> parent;
  std::vector<std::string> queue{from};
  parent[from] = from;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::string cur = queue[i];
    if (cur == to) break;
    for (const auto& [key, sites] : g.edges) {
      if (key.first == cur && parent.find(key.second) == parent.end()) {
        parent[key.second] = cur;
        queue.push_back(key.second);
      }
    }
  }
  std::vector<std::string> path;
  if (parent.find(to) == parent.end()) return path;
  for (std::string cur = to; cur != from; cur = parent[cur]) path.push_back(cur);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::string jsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool enabled() noexcept {
#if defined(AFF_LOCKDEP)
  return true;
#else
  return false;
#endif
}

void onAcquire(const void* mu, const char* name, const char* file, unsigned line) {
  const std::string site = siteOf(file, line);

  // Self-deadlock: this thread already holds this very object. Detected by
  // identity, so it works for unnamed mutexes too.
  for (const Held& h : tl_held) {
    if (h.obj == mu) {
      Graph& g = graph();
      std::lock_guard<std::mutex> lock(g.mu);
      ++g.cycle_count;
      if (g.cycle_reports.size() < 32) {
        std::ostringstream out;
        out << "lockdep: self-deadlock on "
            << (name != nullptr ? name : "<unnamed mutex>") << " — first acquired at "
            << h.site << ", re-acquired at " << site;
        g.cycle_reports.push_back(out.str());
      }
      break;
    }
  }

  if (name != nullptr) {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const Held& h : tl_held) {
      if (h.name == nullptr || std::string(h.name) == name) continue;
      const auto key = std::make_pair(std::string(h.name), std::string(name));
      if (g.edges.find(key) != g.edges.end()) continue;  // order already known
      // New edge h.name -> name. If name already reaches h.name, this
      // acquire closes a cycle: report it with both sites of the closing
      // edge, then record the edge anyway so the report is emitted once.
      if (reachable(g, key.second, key.first)) {
        ++g.cycle_count;
        if (g.cycle_reports.size() < 32) {
          std::ostringstream out;
          out << "lockdep: lock-order cycle — acquiring " << name << " at " << site
              << " while holding " << h.name << " (acquired at " << h.site
              << "), but the observed order already has";
          for (const auto& node : pathBetween(g, key.second, key.first))
            out << " " << node << " ->";
          out << " " << name;
          g.cycle_reports.push_back(out.str());
        }
      }
      g.edges.emplace(key, std::make_pair(h.site, site));
    }
  }

  tl_held.push_back(Held{mu, name, site});
}

void onRelease(const void* mu) {
  // Out-of-order release is legal (MutexLock::unlock before scope end);
  // erase the most recent matching entry.
  for (auto it = tl_held.rbegin(); it != tl_held.rend(); ++it) {
    if (it->obj == mu) {
      tl_held.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<Edge> edges() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<Edge> out;
  out.reserve(g.edges.size());
  for (const auto& [key, sites] : g.edges)
    out.push_back(Edge{key.first, key.second, sites.first, sites.second});
  return out;
}

std::size_t cycleCount() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.cycle_count;
}

std::vector<std::string> reports() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.cycle_reports;
}

void writeJson(std::FILE* out) {
  const auto es = edges();
  const auto rs = reports();
  std::fprintf(out, "{\n  \"enabled\": %s,\n  \"edges\": [\n", enabled() ? "true" : "false");
  for (std::size_t i = 0; i < es.size(); ++i) {
    std::fprintf(out,
                 "    {\"from\": \"%s\", \"to\": \"%s\", \"from_site\": \"%s\", "
                 "\"to_site\": \"%s\"}%s\n",
                 jsonEscaped(es[i].from).c_str(), jsonEscaped(es[i].to).c_str(),
                 jsonEscaped(es[i].from_site).c_str(), jsonEscaped(es[i].to_site).c_str(),
                 i + 1 < es.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"cycle_count\": %zu,\n  \"cycles\": [\n", cycleCount());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    std::fprintf(out, "    \"%s\"%s\n", jsonEscaped(rs[i]).c_str(),
                 i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void writeDot(std::FILE* out) {
  std::fprintf(out, "digraph lock_order {\n  rankdir=LR;\n");
  for (const Edge& e : edges()) {
    std::fprintf(out, "  \"%s\" -> \"%s\" [label=\"%s\"];\n", e.from.c_str(), e.to.c_str(),
                 e.to_site.c_str());
  }
  std::fprintf(out, "}\n");
}

void reset() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.edges.clear();
  g.cycle_reports.clear();
  g.cycle_count = 0;
}

}  // namespace affinity::lockdep
