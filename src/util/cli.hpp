// cli.hpp — minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Every bench
// binary declares its flags up front so `--help` can print them; unknown
// flags are an error (catches typos in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace affinity {

/// Declarative flag set. Usage:
///   Cli cli("fig06_locking_delay", "Locking: mean delay vs arrival rate");
///   auto& procs = cli.flag<int>("procs", 8, "number of processors");
///   cli.parse(argc, argv);   // exits on --help or parse error
///   use(*procs);
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declares a flag with a default; returns a stable reference to the
  /// parsed value (filled in by parse()).
  template <typename T>
  const T& flag(std::string name, T default_value, std::string help);

  /// Parses argv. On `--help` prints usage and exits(0); on error prints a
  /// message and exits(2).
  void parse(int argc, char** argv);

  /// True if the flag was explicitly provided on the command line.
  [[nodiscard]] bool provided(std::string_view name) const;

 private:
  struct Flag {
    std::string help;
    std::string default_repr;
    // Parses `text` into the bound storage; returns false on bad syntax.
    bool (*parse_into)(void* storage, std::string_view text);
    void* storage;
    bool is_bool;
    bool was_provided = false;
  };

  [[noreturn]] void usage_and_exit(int code) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  // Owned storage for flag values; deque-like stability via unique_ptr.
  std::vector<std::unique_ptr<void, void (*)(void*)>> storage_;
};

// --- implementation details -------------------------------------------------

namespace cli_detail {
bool parse_value(std::string_view text, int& out);
bool parse_value(std::string_view text, std::int64_t& out);
bool parse_value(std::string_view text, std::uint64_t& out);
bool parse_value(std::string_view text, double& out);
bool parse_value(std::string_view text, bool& out);
bool parse_value(std::string_view text, std::string& out);
std::string repr(int v);
std::string repr(std::int64_t v);
std::string repr(std::uint64_t v);
std::string repr(double v);
std::string repr(bool v);
std::string repr(const std::string& v);
}  // namespace cli_detail

template <typename T>
const T& Cli::flag(std::string name, T default_value, std::string help) {
  auto* value = new T(std::move(default_value));
  storage_.emplace_back(value, [](void* p) { delete static_cast<T*>(p); });
  Flag f{
      std::move(help),
      cli_detail::repr(*value),
      [](void* storage, std::string_view text) {
        return cli_detail::parse_value(text, *static_cast<T*>(storage));
      },
      value,
      std::is_same_v<T, bool>,
  };
  flags_.emplace(std::move(name), std::move(f));
  return *value;
}

}  // namespace affinity
