#include "util/config.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace affinity {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void badValue(const std::string& key, const std::string& value, const char* type) {
  std::fprintf(stderr, "config: key '%s' has value '%s', expected %s\n", key.c_str(),
               value.c_str(), type);
  std::exit(2);
}

}  // namespace

std::optional<ConfigFile> ConfigFile::parse(std::string_view text, std::string* error) {
  ConfigFile cfg;
  std::string section;
  int lineno = 0;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    ++lineno;
    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        if (error) *error = "bad section header at line " + std::to_string(lineno);
        return std::nullopt;
      }
      section.assign(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "missing '=' at line " + std::to_string(lineno);
      return std::nullopt;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) *error = "empty key at line " + std::to_string(lineno);
      return std::nullopt;
    }
    std::string full = section.empty() ? std::string(key) : section + "." + std::string(key);
    cfg.values_[std::move(full)] = std::string(value);
  }
  return cfg;
}

std::optional<ConfigFile> ConfigFile::load(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse(text, error);
}

std::string ConfigFile::getString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double ConfigFile::getDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v = 0.0;
  const char* end = it->second.data() + it->second.size();
  auto [ptr, ec] = std::from_chars(it->second.data(), end, v);
  if (ec != std::errc() || ptr != end) badValue(key, it->second, "a number");
  return v;
}

std::int64_t ConfigFile::getInt(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t v = 0;
  const char* end = it->second.data() + it->second.size();
  auto [ptr, ec] = std::from_chars(it->second.data(), end, v);
  if (ec != std::errc() || ptr != end) badValue(key, it->second, "an integer");
  return v;
}

bool ConfigFile::getBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  badValue(key, it->second, "a boolean");
}

std::map<std::string, std::string> ConfigFile::section(const std::string& name) const {
  std::map<std::string, std::string> out;
  const std::string prefix = name + ".";
  for (const auto& [k, v] : values_) {
    if (k.rfind(prefix, 0) == 0) out.emplace(k.substr(prefix.size()), v);
  }
  return out;
}

}  // namespace affinity
