// backoff.hpp — bounded exponential backoff for spin-wait loops.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

namespace affinity {

/// Escalating wait for contended spin loops. The first few pauses are plain
/// yields (cheap, keeps latency low when the stall is momentary); after that
/// the waiter sleeps, doubling the interval up to a fixed cap so a stalled
/// consumer never pins a core at 100% while still re-checking a few thousand
/// times per second.
class Backoff {
 public:
  /// Waits one escalation step.
  void pause() {
    if (yields_ < kMaxYields) {
      ++yields_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(sleep_);
    sleep_ = std::min(kMaxSleep, sleep_ * 2);
  }

  /// Forgets the escalation (call after successful progress).
  void reset() noexcept {
    yields_ = 0;
    sleep_ = kMinSleep;
  }

 private:
  static constexpr int kMaxYields = 16;
  static constexpr std::chrono::microseconds kMinSleep{1};
  static constexpr std::chrono::microseconds kMaxSleep{256};

  int yields_ = 0;
  std::chrono::microseconds sleep_{kMinSleep};
};

}  // namespace affinity
