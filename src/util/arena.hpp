// arena.hpp — per-thread frame-buffer arena for the runtime fast path.
//
// The real-thread engines move one heap-allocated byte buffer per frame
// (WorkItem::frame): submitter allocates, a worker frees — a cross-thread
// producer/consumer pattern that global malloc serves with lock contention
// and cache-line bouncing. FrameArena takes the allocator off that path
// entirely (the llheap-style per-thread-heap argument): each thread owns an
// arena with power-of-two size-class freelists (64 B .. 64 KiB), refilled
// in slabs from ::operator new. Steady state, every allocation is a
// freelist pop and every free a freelist push — zero global-allocator
// calls (tests/arena_test.cpp pins this with a counting allocator).
//
// Cross-thread frees — the common case: a worker destroys a WorkItem whose
// buffer the submitting thread allocated — are returned to the owning
// arena through a lock-free Treiber stack and drained back into its
// freelists on the owner's next allocation. Blocks above the largest size
// class fall through to the global allocator (they never occur on the
// frame path; real frames are ≤ 4 KiB).
//
// Arenas are heap-allocated on first use per thread and intentionally
// never destroyed (a global registry keeps them reachable for stats): a
// block may outlive its allocating thread — e.g. frames reconciled by
// stop() after a worker was killed — so arena lifetime must exceed every
// thread's. The cost is one arena-sized leak per thread at exit, bounded
// and deliberate.
//
// FrameBuf is the owning handle the runtime uses in place of
// std::vector<std::uint8_t>: same copy/compare/index surface where the
// engines and tests need it, arena-backed storage underneath.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace affinity {

/// Counter snapshot for one arena (or the sum over all of them). Exported
/// as the rt.arena.* metric domain (docs/OBSERVABILITY.md).
struct ArenaStats {
  std::uint64_t allocs = 0;                ///< allocate() calls served
  std::uint64_t frees = 0;                 ///< blocks returned (any thread)
  std::uint64_t cross_thread_returns = 0;  ///< frees routed via the Treiber stack
  std::uint64_t slab_refills = 0;          ///< freelist refills from ::operator new
  std::uint64_t oversize_allocs = 0;       ///< > kMaxClassBytes, global fallback
  std::uint64_t bytes_reserved = 0;        ///< total slab bytes held
};

/// A per-thread size-class allocator for frame buffers (see file comment).
/// allocate() is owner-thread-only; deallocate() is safe from any thread.
class FrameArena {
 public:
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = 64 * 1024;
  static constexpr std::size_t kNumClasses = 11;  // 64 << 10 == 64 KiB
  /// Target bytes fetched from the global allocator per freelist refill.
  static constexpr std::size_t kSlabTargetBytes = 128 * 1024;

  /// The calling thread's arena (created and registered on first use;
  /// never destroyed — see file comment).
  static FrameArena& local();

  /// Returns a buffer of at least `bytes` capacity. Owner thread only.
  [[nodiscard]] std::uint8_t* allocate(std::size_t bytes);

  /// Returns `data` (from any arena's allocate, called on any thread) to
  /// its owning arena — directly when the caller owns it, via the owner's
  /// return stack otherwise. `data` must not be null.
  static void deallocate(std::uint8_t* data) noexcept;

  /// Usable capacity of a block returned by allocate().
  [[nodiscard]] static std::size_t capacityOf(const std::uint8_t* data) noexcept;

  /// This arena's counters.
  [[nodiscard]] ArenaStats stats() const noexcept;

  /// Sum over every arena ever created (any thread).
  [[nodiscard]] static ArenaStats totalStats();

 private:
  // Block layout: [BlockHeader][data...]; the header is 16 bytes so data
  // keeps max_align-compatible alignment for byte buffers. While free, the
  // first pointer-size bytes of the data area hold the freelist link.
  struct BlockHeader {
    FrameArena* owner;      // allocating arena (valid forever; never destroyed)
    std::uint64_t capacity; // usable bytes; > kMaxClassBytes marks oversize
  };
  static_assert(sizeof(BlockHeader) == 16);

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  [[nodiscard]] static std::size_t classFor(std::size_t bytes) noexcept;
  [[nodiscard]] static BlockHeader* headerOf(std::uint8_t* data) noexcept {
    return reinterpret_cast<BlockHeader*>(data - sizeof(BlockHeader));
  }
  void drainReturns() noexcept;
  void refill(std::size_t cls);
  void pushFree(std::uint8_t* data, std::size_t cls) noexcept;

  // Owner-thread-only state (no lock: one thread ever touches it).
  std::uint8_t* free_[kNumClasses] = {};
  std::vector<void*> slabs_;  // retained for the life of the process

  // Any-thread state.
  std::atomic<std::uint8_t*> returns_{nullptr};  // Treiber stack of remote frees
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> cross_thread_returns_{0};
  std::atomic<std::uint64_t> slab_refills_{0};
  std::atomic<std::uint64_t> oversize_allocs_{0};
  std::atomic<std::uint64_t> bytes_reserved_{0};
};

/// An arena-backed owning byte buffer — the runtime's frame type
/// (WorkItem::frame). Mirrors the slice of the std::vector<std::uint8_t>
/// surface the engines, fault injector, and tests use; copies allocate
/// from the copying thread's arena.
class FrameBuf {
 public:
  FrameBuf() = default;
  // Implicit by design: frames originate as std::vector from the builders
  // (buildUdpFrame et al.) and enter the arena at the WorkItem boundary.
  FrameBuf(const std::vector<std::uint8_t>& bytes)  // NOLINT(google-explicit-constructor)
      : FrameBuf(std::span<const std::uint8_t>{bytes}) {}
  explicit FrameBuf(std::span<const std::uint8_t> bytes) { assign(bytes); }

  FrameBuf(const FrameBuf& other) { assign(other.span()); }
  FrameBuf& operator=(const FrameBuf& other) {
    if (this != &other) assign(other.span());
    return *this;
  }
  FrameBuf(FrameBuf&& other) noexcept : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  FrameBuf& operator=(FrameBuf&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~FrameBuf() { release(); }

  /// Replaces the contents (reuses the block when capacity suffices).
  void assign(std::span<const std::uint8_t> bytes) {
    reserve(bytes.size());
    if (!bytes.empty()) std::memcpy(data_, bytes.data(), bytes.size());
    size_ = bytes.size();
  }
  /// vector-compatible fill-assign (the chaos corpus uses it).
  void assign(std::size_t n, std::uint8_t value) {
    reserve(n);
    if (n != 0) std::memset(data_, value, n);
    size_ = n;
  }

  /// Shrinks or grows (new bytes zeroed); keeps the block when it fits.
  void resize(std::size_t n) {
    if (n <= size_) {
      size_ = n;
      return;
    }
    const std::size_t old = size_;
    reserve(n);
    std::memset(data_ + old, 0, n - old);
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] std::uint8_t& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const std::uint8_t& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept { return {data_, size_}; }
  // Implicit: lets FrameBuf flow into receiveFrame(span) unchanged.
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return span();
  }

  friend bool operator==(const FrameBuf& a, const FrameBuf& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  /// Ensures capacity ≥ n, preserving contents up to size_.
  void reserve(std::size_t n) {
    if (data_ != nullptr && FrameArena::capacityOf(data_) >= n) return;
    std::uint8_t* grown = n != 0 ? FrameArena::local().allocate(n) : nullptr;
    if (grown != nullptr && size_ != 0) std::memcpy(grown, data_, size_);
    release();
    data_ = grown;
  }
  void release() noexcept {
    if (data_ != nullptr) FrameArena::deallocate(data_);
    data_ = nullptr;
    size_ = 0;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace affinity
