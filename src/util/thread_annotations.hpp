// thread_annotations.hpp — portable Clang Thread Safety Analysis macros
// (docs/STATIC_ANALYSIS.md).
//
// Under clang these expand to the __attribute__((...)) spellings that
// -Wthread-safety checks at compile time: which mutex guards which field,
// which functions must (or must not) be called with a lock held, and which
// RAII types acquire/release. Under any other compiler they expand to
// nothing, so annotated code stays portable and zero-cost.
//
// The names mirror the capability-style vocabulary from the clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an AFF_
// prefix. Use them through aff's own primitives (util/mutex.hpp: Mutex,
// MutexLock, CondVar) — raw std::mutex in the annotated trees
// (src/runtime, src/obs, src/core) is rejected by tools/afflint.
#pragma once

#if defined(__clang__)
#define AFF_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define AFF_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
#define AFF_CAPABILITY(x) AFF_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define AFF_SCOPED_CAPABILITY AFF_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define AFF_GUARDED_BY(x) AFF_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define AFF_PT_GUARDED_BY(x) AFF_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention). Deliberately NOT the
/// clang acquired_before/acquired_after attributes: those only exist under
/// -Wthread-safety-beta and cannot name locks across classes, while the
/// repo's multi-lock pairs are exactly cross-class (engine stack_mu_ before
/// FlowTable::Shard::mu, ...). Instead these expand to nothing and are read
/// lexically by two checkers that CAN handle cross-class names:
///   * tools/afflint's lock-order rule folds them into the static
///     acquisition graph (a contradicting or cyclic declaration fails lint);
///   * the AFF_LOCKDEP runtime (util/lockdep.hpp) cross-checks observed
///     acquisition order against them in tests/lockdep_test.cpp.
/// Arguments are canonical node names ("Class::member"), matching the name
/// the Mutex is constructed with: `Mutex mu_{"NicDispatcher::mu_"}`.
#define AFF_ACQUIRED_BEFORE(...)  // linter-checked, see above
#define AFF_ACQUIRED_AFTER(...)   // linter-checked, see above

/// Caller must hold the capability (exclusively / shared) across the call.
#define AFF_REQUIRES(...) AFF_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define AFF_REQUIRES_SHARED(...) AFF_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past the return.
#define AFF_ACQUIRE(...) AFF_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define AFF_ACQUIRE_SHARED(...) AFF_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define AFF_RELEASE(...) AFF_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define AFF_RELEASE_SHARED(...) AFF_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define AFF_RELEASE_GENERIC(...) AFF_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define AFF_TRY_ACQUIRE(...) AFF_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define AFF_TRY_ACQUIRE_SHARED(...) \
  AFF_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// guards against self-deadlock on non-recursive mutexes).
#define AFF_EXCLUDES(...) AFF_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire/release).
#define AFF_ASSERT_CAPABILITY(x) AFF_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define AFF_RETURN_CAPABILITY(x) AFF_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking discipline is intentionally outside
/// what the analysis can model (e.g. the single-writer-per-track protocol of
/// obs::TraceSession). Always pair with a comment naming the real invariant.
#define AFF_NO_THREAD_SAFETY_ANALYSIS AFF_THREAD_ANNOTATION__(no_thread_safety_analysis)
