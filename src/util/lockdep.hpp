// lockdep.hpp — debug-build lock-order tracking (the dynamic half of the
// lock-discipline layer; src/lint has the static half, and the two
// cross-check each other in tests/lockdep_test.cpp).
//
// When the tree is configured with -DAFF_LOCKDEP=ON, every aff::Mutex
// acquire/release (util/mutex.hpp) reports here. The tracker keeps a
// per-thread held-set and a global acquisition-order graph keyed by the
// mutex *name* (the `Mutex mu_{"Class::mu_"}` constructor argument — the
// same canonical node names the static pass derives). At each acquire it
// adds name edges held→new, and if a new edge closes a cycle it records a
// first-witness report carrying both acquisition sites (where the held lock
// was taken and where the conflicting one is being taken) — the ordering
// violation is caught the first time the *order* is exercised, not the
// first time two threads actually interleave into the deadlock.
//
// Deliberate properties:
//   * Names, not objects. Every FlowTable shard maps to one node
//     ("FlowTable::Shard::mu"), every MpmcQueue to "MpmcQueue::mu_" — the
//     graph states the *rule*, exactly like the static graph. (Two shards
//     locked together therefore show as a self-edge; the flow table never
//     does that, and lockdep is the proof.)
//   * Unnamed mutexes (default-constructed, e.g. test-local locks) stay in
//     the held-set for self-deadlock detection but add no graph edges —
//     name any mutex that participates in a multi-lock pattern.
//   * Reports are recorded, never thrown: the soak or test inspects
//     cycleCount() / reports() at a quiescent point and fails there.
//   * No clocks, no randomness (util is a simulation-path dir); the graph
//     is a pure function of the acquisition history.
//
// The inspection API below is compiled unconditionally (so the cycle
// detector is unit-testable in any tree); only the hooks inside
// util/mutex.hpp are gated on the AFF_LOCKDEP macro. enabled() says whether
// those hooks are live in this build.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace affinity::lockdep {

/// True iff this tree was configured with -DAFF_LOCKDEP=ON (the mutex hooks
/// are live and the graph observes real acquisitions).
bool enabled() noexcept;

/// Acquisition hook: `mu` identifies the lock object, `name` its canonical
/// node (nullptr for unnamed), `file`/`line` the acquisition site. Called by
/// Mutex::lock()/try_lock() under AFF_LOCKDEP; tests may call it directly.
void onAcquire(const void* mu, const char* name, const char* file, unsigned line);

/// Release hook (order-independent: releasing out of acquisition order is
/// legal and handled).
void onRelease(const void* mu);

/// One observed name→name edge with its first witness sites.
struct Edge {
  std::string from;       ///< held lock's node name
  std::string to;         ///< acquired lock's node name
  std::string from_site;  ///< "file:line" where the held lock was acquired
  std::string to_site;    ///< "file:line" of the acquisition that made the edge
};

/// Snapshot of the observed order graph (stable order: from, then to).
std::vector<Edge> edges();

/// Number of distinct ordering violations recorded (cycles closed by an
/// acquire, plus self-deadlocks: re-acquiring an object already held).
std::size_t cycleCount();

/// Human-readable first-witness reports, one per violation, each naming the
/// full cycle and both acquisition sites of the closing edge.
std::vector<std::string> reports();

/// Observed graph as JSON: {"enabled":…, "edges":[…], "cycles":[…]}.
void writeJson(std::FILE* out);

/// Observed graph as Graphviz DOT (digraph lock_order).
void writeDot(std::FILE* out);

/// Clears the graph and reports. Call only at a quiescent point (no locks
/// held anywhere); per-thread held-sets of live threads are not touched.
void reset();

}  // namespace affinity::lockdep
