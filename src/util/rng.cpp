#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace affinity {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_index) const noexcept {
  // Mix parent seed and stream index through splitmix64 twice to decorrelate
  // adjacent stream indices.
  std::uint64_t sm = seed_ ^ (0xa0761d6478bd642fULL * (stream_index + 1));
  std::uint64_t derived = splitmix64(sm);
  derived ^= splitmix64(sm);
  return Rng(derived);
}

double Rng::uniform() noexcept {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  AFF_DCHECK(n > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
  AFF_DCHECK(rate > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // avoid log(0)
  return -std::log(u) / rate;
}

double Rng::normal() noexcept {
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

std::uint64_t Rng::geometric(double p) noexcept {
  AFF_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  AFF_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean batch sizes used by the workload generators.
  const double x = mean + std::sqrt(mean) * normal() + 0.5;
  return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace affinity
