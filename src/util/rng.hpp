// rng.hpp — deterministic pseudo-random number generation for simulation.
//
// The simulator needs (1) reproducible runs given a seed, (2) cheap
// independent sub-streams so that, e.g., each traffic stream's arrival
// process has its own generator and adding a policy does not perturb the
// sampled workload. We use xoshiro256++ seeded via splitmix64; sub-streams
// are derived with the generator's long-jump-free `split()` (splitmix of the
// parent seed and a stream index), which is adequate for statistically
// independent simulation streams.
#pragma once

#include <cstdint>
#include <limits>

namespace affinity {

/// splitmix64 step: used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though we provide the distributions we
/// need directly (they are guaranteed stable across platforms, unlike
/// libstdc++'s).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniform random bits.
  result_type operator()() noexcept;

  /// Derives an independent generator for sub-stream `stream_index`.
  /// Deterministic in (parent seed, stream_index); derived streams do not
  /// consume randomness from the parent.
  [[nodiscard]] Rng split(std::uint64_t stream_index) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method
  /// (unbiased, no modulo on the fast path).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Geometric number of trials >= 1 with success probability p in (0, 1].
  std::uint64_t geometric(double p) noexcept;

  /// Poisson with the given mean (>= 0). Exact for small means (Knuth),
  /// PTRS rejection for large.
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t seed_;  // retained so split() can derive children
  std::uint64_t s_[4];
};

}  // namespace affinity
