// config.hpp — minimal INI-style configuration files.
//
// Format: `[section]` headers, `key = value` entries, `#`/`;` comments,
// blank lines ignored. Keys are addressed as "section.key" (keys before any
// section live in the "" section and are addressed bare). Used by the
// scenario-driver tool so experiments are reproducible artifacts rather
// than command lines.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace affinity {

/// Parsed configuration with typed accessors.
class ConfigFile {
 public:
  /// Parses `text`; returns nullopt and sets `error` on malformed input.
  static std::optional<ConfigFile> parse(std::string_view text, std::string* error = nullptr);

  /// Loads and parses a file.
  static std::optional<ConfigFile> load(const std::string& path, std::string* error = nullptr);

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Raw string; `fallback` when absent.
  [[nodiscard]] std::string getString(const std::string& key, const std::string& fallback) const;

  /// Typed getters: return `fallback` when absent; abort the program with a
  /// clear message when present but unparsable (configs fail loudly).
  [[nodiscard]] double getDouble(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t getInt(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;

  /// All keys in a section (without the "section." prefix).
  [[nodiscard]] std::map<std::string, std::string> section(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace affinity
