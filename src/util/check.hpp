// check.hpp — lightweight precondition / invariant checking.
//
// AFF_CHECK is always on (it guards logic errors whose cost is negligible
// next to simulation work); AFF_DCHECK compiles away in NDEBUG builds and is
// used on hot paths (event queue, cache sets).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace affinity {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace affinity

#define AFF_CHECK(expr)                                         \
  do {                                                          \
    if (!(expr)) ::affinity::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define AFF_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define AFF_DCHECK(expr) AFF_CHECK(expr)
#endif
