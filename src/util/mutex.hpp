// mutex.hpp — annotated mutex / lock / condition-variable primitives.
//
// Thin wrappers over the std synchronization types carrying the Clang
// Thread Safety Analysis annotations from util/thread_annotations.hpp, so
// that `-Wthread-safety` can prove lock discipline at compile time:
//
//   Mutex      — std::mutex as a CAPABILITY; fields it protects are
//                declared `T field AFF_GUARDED_BY(mu_);`
//   MutexLock  — RAII scoped acquire (SCOPED_CAPABILITY) with an early
//                unlock() for the unlock-before-notify pattern
//   CondVar    — condition variable waiting on a Mutex; wait(mu, pred)
//                REQUIRES(mu), matching condvar semantics (the lock is
//                held on entry, released while waiting, re-held on return)
//
// All wrappers are header-only forwarding shims: in any optimized build
// they compile to exactly the std calls they wrap (the perf-smoke guard in
// scripts/run_perf_smoke.sh pins this). Off clang the annotations vanish
// and these are plain aliases-with-ceremony.
//
// Lockdep (debug builds): configuring with -DAFF_LOCKDEP=ON makes every
// acquire/release report to util/lockdep.hpp, which maintains a per-thread
// held-set and a global acquisition-order graph with immediate cycle
// detection. Mutexes that participate in multi-lock patterns take a name —
// `Mutex mu_{"Class::mu_"}` — matching the canonical node the static
// lock-order pass (src/lint) derives, so the two graphs cross-check. When
// AFF_LOCKDEP is off (every release/perf tree), the name is discarded at
// compile time and the hooks do not exist: zero state, zero calls.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.hpp"

#if defined(AFF_LOCKDEP)
#include "util/lockdep.hpp"
// Acquisition sites come from the compiler builtins (gcc and clang both
// have them) so the hot signatures stay free of <source_location> types.
// BARE is a full parameter list, TAIL appends to an existing one, FWD
// forwards the captured site one call deeper.
#define AFF_LOCKDEP_SITE_BARE \
  const char* ld_file = __builtin_FILE(), unsigned ld_line = __builtin_LINE()
#define AFF_LOCKDEP_SITE_TAIL , AFF_LOCKDEP_SITE_BARE
#define AFF_LOCKDEP_SITE_FWD ld_file, ld_line
#else
#define AFF_LOCKDEP_SITE_BARE
#define AFF_LOCKDEP_SITE_TAIL
#define AFF_LOCKDEP_SITE_FWD
#endif

namespace affinity {

/// Annotated exclusive mutex (see file comment). The optional name is the
/// lockdep graph node ("Class::member", matching the static pass); unnamed
/// mutexes are tracked for self-deadlock only.
class AFF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if defined(AFF_LOCKDEP)
  explicit Mutex(const char* lockdep_name) : name_(lockdep_name) {}
#else
  explicit Mutex(const char* /*lockdep_name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(AFF_LOCKDEP_SITE_BARE) AFF_ACQUIRE() {
#if defined(AFF_LOCKDEP)
    lockdep::onAcquire(this, name_, ld_file, ld_line);
#endif
    mu_.lock();
  }
  void unlock() AFF_RELEASE() {
#if defined(AFF_LOCKDEP)
    lockdep::onRelease(this);
#endif
    mu_.unlock();
  }
  [[nodiscard]] bool try_lock(AFF_LOCKDEP_SITE_BARE) AFF_TRY_ACQUIRE(true) {
#if defined(AFF_LOCKDEP)
    if (!mu_.try_lock()) return false;
    lockdep::onAcquire(this, name_, ld_file, ld_line);
    return true;
#else
    return mu_.try_lock();
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(AFF_LOCKDEP)
  const char* name_ = nullptr;
#endif
};

/// RAII lock for Mutex; the scoped analogue of std::lock_guard with an
/// optional early release (`unlock()`), after which the destructor is a
/// no-op. Not copyable or movable — it mirrors the scope it guards.
class AFF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu AFF_LOCKDEP_SITE_TAIL) AFF_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock(AFF_LOCKDEP_SITE_FWD);
  }
  ~MutexLock() AFF_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope end (e.g. unlock-then-notify); call at most once.
  void unlock() AFF_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

/// Condition variable bound to Mutex at each wait site. Predicate waits
/// only — the loop-around-spurious-wakeup is not optional — and the
/// predicate must be annotated AFF_REQUIRES(mu) when it reads guarded
/// fields (it runs with the lock held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until `pred()`; `mu` is released while waiting and re-held when
  /// this returns (hence REQUIRES: held on entry and on exit).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) AFF_REQUIRES(mu) {
    Waiter w{mu};
    // afflint: allow(blocking-under-lock): w wraps mu itself — condvar contract
    cv_.wait(w, std::move(pred));
  }

  /// wait() bounded by `timeout`; returns pred() (false on timeout).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
                Pred pred) AFF_REQUIRES(mu) {
    Waiter w{mu};
    // afflint: allow(blocking-under-lock): w wraps mu itself (see wait()).
    return cv_.wait_for(w, timeout, std::move(pred));
  }

 private:
  // BasicLockable view of a Mutex handed to condition_variable_any, which
  // unlocks/relocks it around the actual wait. Exempt from analysis: the
  // transient release inside a wait is the condvar contract that the
  // REQUIRES annotation on wait()/wait_for() already expresses. (Under
  // lockdep the relock reports through Mutex::lock like any other acquire,
  // so the held-set stays exact across the wait.)
  struct Waiter {
    Mutex& mu;
    void lock() AFF_NO_THREAD_SAFETY_ANALYSIS { mu.lock(); }
    void unlock() AFF_NO_THREAD_SAFETY_ANALYSIS { mu.unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace affinity
