// mutex.hpp — annotated mutex / lock / condition-variable primitives.
//
// Thin wrappers over the std synchronization types carrying the Clang
// Thread Safety Analysis annotations from util/thread_annotations.hpp, so
// that `-Wthread-safety` can prove lock discipline at compile time:
//
//   Mutex      — std::mutex as a CAPABILITY; fields it protects are
//                declared `T field AFF_GUARDED_BY(mu_);`
//   MutexLock  — RAII scoped acquire (SCOPED_CAPABILITY) with an early
//                unlock() for the unlock-before-notify pattern
//   CondVar    — condition variable waiting on a Mutex; wait(mu, pred)
//                REQUIRES(mu), matching condvar semantics (the lock is
//                held on entry, released while waiting, re-held on return)
//
// All wrappers are header-only forwarding shims: in any optimized build
// they compile to exactly the std calls they wrap (the perf-smoke guard in
// scripts/run_perf_smoke.sh pins this). Off clang the annotations vanish
// and these are plain aliases-with-ceremony.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.hpp"

namespace affinity {

/// Annotated exclusive mutex (see file comment).
class AFF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AFF_ACQUIRE() { mu_.lock(); }
  void unlock() AFF_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() AFF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex; the scoped analogue of std::lock_guard with an
/// optional early release (`unlock()`), after which the destructor is a
/// no-op. Not copyable or movable — it mirrors the scope it guards.
class AFF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AFF_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() AFF_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope end (e.g. unlock-then-notify); call at most once.
  void unlock() AFF_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

/// Condition variable bound to Mutex at each wait site. Predicate waits
/// only — the loop-around-spurious-wakeup is not optional — and the
/// predicate must be annotated AFF_REQUIRES(mu) when it reads guarded
/// fields (it runs with the lock held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until `pred()`; `mu` is released while waiting and re-held when
  /// this returns (hence REQUIRES: held on entry and on exit).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) AFF_REQUIRES(mu) {
    Waiter w{mu};
    cv_.wait(w, std::move(pred));
  }

  /// wait() bounded by `timeout`; returns pred() (false on timeout).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
                Pred pred) AFF_REQUIRES(mu) {
    Waiter w{mu};
    return cv_.wait_for(w, timeout, std::move(pred));
  }

 private:
  // BasicLockable view of a Mutex handed to condition_variable_any, which
  // unlocks/relocks it around the actual wait. Exempt from analysis: the
  // transient release inside a wait is the condvar contract that the
  // REQUIRES annotation on wait()/wait_for() already expresses.
  struct Waiter {
    Mutex& mu;
    void lock() AFF_NO_THREAD_SAFETY_ANALYSIS { mu.lock(); }
    void unlock() AFF_NO_THREAD_SAFETY_ANALYSIS { mu.unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace affinity
