#include "flow/flow_table.hpp"

#include <algorithm>
#include <cmath>

namespace affinity::flow {
namespace {

// splitmix64 finalizer over the key: the same cheap avalanche used for rng
// seeding, here spreading adjacent stream ids across shards and slots.
std::uint64_t mixKey(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t floorPow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

const char* evictPolicyName(EvictPolicy p) {
  switch (p) {
    case EvictPolicy::kLru: return "lru";
    case EvictPolicy::kFifo: return "fifo";
    case EvictPolicy::kRandom: return "random";
    case EvictPolicy::kDirect: return "direct";
  }
  return "?";
}

bool parseEvictPolicy(const std::string& s, EvictPolicy* out) {
  if (s == "lru") *out = EvictPolicy::kLru;
  else if (s == "fifo") *out = EvictPolicy::kFifo;
  else if (s == "random") *out = EvictPolicy::kRandom;
  else if (s == "direct") *out = EvictPolicy::kDirect;
  else return false;
  return true;
}

const char* evictReasonName(EvictReason r) {
  switch (r) {
    case EvictReason::kCapacity: return "capacity";
    case EvictReason::kCollision: return "collision";
  }
  return "?";
}

FlowTable::FlowTable(const FlowTableConfig& config) : config_(config) {
  num_shards_ = static_cast<unsigned>(floorPow2(std::max(1u, config.shards)));
  probe_window_ = config.policy == EvictPolicy::kDirect ? 1 : 8;

  const std::size_t total_entries =
      std::max<std::size_t>(config.budget_bytes / sizeof(Entry),
                            static_cast<std::size_t>(num_shards_) * probe_window_);
  slots_per_shard_ = floorPow2(std::max<std::size_t>(total_entries / num_shards_,
                                                     probe_window_));
  capacity_ = slots_per_shard_ * num_shards_;

  shards_.reserve(num_shards_);
  for (unsigned i = 0; i < num_shards_; ++i) {
    auto sh = std::make_unique<Shard>();
    MutexLock lock(sh->mu);
    sh->slots.assign(slots_per_shard_, Entry{});
    sh->rng = Rng(config.seed).split(i + 1);
    lock.unlock();
    shards_.push_back(std::move(sh));
  }

  const auto mark = [&](double frac) {
    const double clamped = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::uint64_t>(
        std::llround(clamped * static_cast<double>(capacity_)));
  };
  shed_high_entries_ = mark(config.shed_high_water);
  shed_low_entries_ = mark(config.shed_low_water);
  if (shed_low_entries_ > shed_high_entries_) shed_low_entries_ = shed_high_entries_;

  const double admit = std::clamp(config.shed_admit_fraction, 0.0, 1.0);
  // Threshold in 64-bit hash space: hashes below it are still admitted.
  // admit < 1 keeps admit * 2^64 below 2^64, so the cast is exact; 1.0
  // maps to the kNeverShed sentinel (casting 2^64 itself would overflow).
  shed_admit_cut_ = admit >= 1.0
                        ? kNeverShed
                        : static_cast<std::uint64_t>(std::ldexp(admit, 64));
}

bool FlowTable::shedSelects(std::uint32_t key) const {
  // Pure function of (key, seed): the same flow is either shed or spared on
  // every attempt, independent of arrival order or worker count.
  if (shed_admit_cut_ == kNeverShed) return false;
  return mixKey(static_cast<std::uint64_t>(key) ^ config_.seed) >= shed_admit_cut_;
}

void FlowTable::updateShedLatch() {
  const std::uint64_t occ = occupancy_.load(std::memory_order_relaxed);
  if (!shedding_.load(std::memory_order_relaxed)) {
    if (occ >= shed_high_entries_ && shed_high_entries_ > 0) {
      shedding_.store(true, std::memory_order_relaxed);
      shed_engaged_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (occ <= shed_low_entries_) {
    shedding_.store(false, std::memory_order_relaxed);
  }
}

AdmitResult FlowTable::admit(std::uint32_t key, bool shed_pressure) {
  AdmitResult result;
  if (!config_.enabled) return result;

  const std::uint64_t h = mixKey(key);
  Shard& sh = *shards_[shardOf(h)];
  const std::size_t mask = slots_per_shard_ - 1;
  const auto base = static_cast<std::size_t>((h >> 16) & mask);

  MutexLock lock(sh.mu);
  ++sh.tick;

  // Probe for the key and remember the emptiest/victim candidates as we go.
  int empty_at = -1;
  std::size_t window[8];
  for (unsigned i = 0; i < probe_window_; ++i) {
    const std::size_t idx = (base + i) & mask;
    window[i] = idx;
    Entry& e = sh.slots[idx];
    if (e.key == key) {
      // Established flow: never shed, just stamp recency and count the frame.
      e.last_admit = sh.tick;
      ++e.inflight;
      ++sh.hits;
      result.gen = e.gen;
      return result;
    }
    if (e.key == kEmptyKey && empty_at < 0) empty_at = static_cast<int>(i);
  }

  // New flow. The shedding layer may refuse it before any state is touched.
  if (config_.shed_enabled &&
      (shedding_.load(std::memory_order_relaxed) || shed_pressure) &&
      shedSelects(key)) {
    result.status = AdmitResult::Status::kShed;
    shed_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::size_t slot;
  if (empty_at >= 0) {
    slot = window[empty_at];
    occupancy_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Window full: the policy picks which flow's state survives.
    std::size_t victim = window[0];
    switch (config_.policy) {
      case EvictPolicy::kLru:
        for (unsigned i = 1; i < probe_window_; ++i) {
          if (sh.slots[window[i]].last_admit < sh.slots[victim].last_admit)
            victim = window[i];
        }
        break;
      case EvictPolicy::kFifo:
        for (unsigned i = 1; i < probe_window_; ++i) {
          if (sh.slots[window[i]].gen < sh.slots[victim].gen) victim = window[i];
        }
        break;
      case EvictPolicy::kRandom:
        victim = window[sh.rng.uniform_u64(probe_window_)];
        break;
      case EvictPolicy::kDirect:
        break;  // window of one
    }
    Entry& v = sh.slots[victim];
    const auto reason = config_.policy == EvictPolicy::kDirect
                            ? EvictReason::kCollision
                            : EvictReason::kCapacity;
    ++sh.evicted_by_reason[static_cast<std::size_t>(reason)];
    // Pre-count the victim's queued frames: when they surface at process
    // time their generation will miss and they are dropped silently there.
    sh.evicted_inflight += v.inflight;
    slot = victim;
    result.evicted = true;
    result.victim_key = v.key;
  }

  Entry& e = sh.slots[slot];
  e.key = key;
  e.inflight = 1;
  e.gen = sh.next_gen++;
  e.last_admit = sh.tick;
  ++sh.inserts;
  result.inserted = true;
  result.gen = e.gen;
  lock.unlock();

  if (empty_at >= 0) updateShedLatch();
  return result;
}

bool FlowTable::release(std::uint32_t key, std::uint64_t gen) {
  if (!config_.enabled) return true;

  const std::uint64_t h = mixKey(key);
  Shard& sh = *shards_[shardOf(h)];
  const std::size_t mask = slots_per_shard_ - 1;
  const auto base = static_cast<std::size_t>((h >> 16) & mask);

  MutexLock lock(sh.mu);
  for (unsigned i = 0; i < probe_window_; ++i) {
    Entry& e = sh.slots[(base + i) & mask];
    if (e.key == key) {
      if (e.gen != gen) break;  // evicted and re-inserted since admission
      if (e.inflight > 0) --e.inflight;
      return true;
    }
  }
  ++sh.stale_releases;
  return false;
}

FlowTableStats FlowTable::stats() const {
  FlowTableStats out;
  out.capacity = capacity_;
  out.occupancy = occupancy_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.shed_engaged = shed_engaged_.load(std::memory_order_relaxed);
  for (const auto& sh_ptr : shards_) {
    Shard& sh = *sh_ptr;
    MutexLock lock(sh.mu);
    out.inserts += sh.inserts;
    out.hits += sh.hits;
    for (std::size_t r = 0; r < kNumEvictReasons; ++r)
      out.evicted_by_reason[r] += sh.evicted_by_reason[r];
    out.evicted_inflight += sh.evicted_inflight;
    out.stale_releases += sh.stale_releases;
  }
  return out;
}

}  // namespace affinity::flow
