// flow_table.hpp — bounded, sharded per-flow state table with pluggable
// eviction and adaptive new-flow shedding.
//
// A production receive path cannot keep per-stream state for every flow it
// has ever seen: the table itself becomes a cache footprint the scheduler
// must manage and a resource an adversary can exhaust. This table gives the
// runtime engines and the simulator one bounded answer:
//
//   * fixed memory budget, set once at construction (engines size it at
//     openPort) — never grows, never allocates on the admit path;
//   * open-addressing storage split across cache-line-aligned shards, each
//     with its own annotated Mutex, so submit-side admission does not
//     serialize across RSS buckets;
//   * four victim-selection policies within a fixed probe window, after
//     Jain's flow-cache comparison (DEC-TR-592, cs/9809092): LRU, FIFO,
//     random (seeded), and direct-mapped (window of one);
//   * generation-stamped entries: a frame carries the generation of the
//     flow entry that admitted it, so a frame whose flow was evicted while
//     the frame sat in a queue is recognized at process time and accounted
//     once (as evicted in-flight), never twice;
//   * adaptive load shedding: when table occupancy crosses a high-water
//     mark (with hysteresis at a low-water mark, and an optional external
//     pressure signal such as queue depth), admissions for flows not
//     already in the table are shed with a deterministic seeded tiebreak.
//     Established flows are never shed.
//
// Determinism doctrine: every mutation that victim selection or shedding
// can observe (insert, evict, recency stamp, occupancy) happens on the
// admit path only. release() touches nothing but the in-flight counter,
// which no victim choice reads — so a single submit thread yields
// bit-identical eviction/shed ledgers regardless of worker count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace affinity::flow {

/// Victim-selection policy within a probe window (Jain, DEC-TR-592).
enum class EvictPolicy : std::uint8_t {
  kLru,     ///< evict the least recently *admitted* flow in the window
  kFifo,    ///< evict the oldest insertion in the window
  kRandom,  ///< evict a seeded-uniform pick from the window
  kDirect,  ///< direct-mapped: window of one, occupant is always the victim
};

const char* evictPolicyName(EvictPolicy p);
bool parseEvictPolicy(const std::string& s, EvictPolicy* out);

/// Why an entry was evicted (per-cause ledger, mirrors DropReason style).
enum class EvictReason : std::uint8_t {
  kCapacity,   ///< probe window full, policy chose a victim
  kCollision,  ///< direct-mapped displacement (the only slot was taken)
};
inline constexpr std::size_t kNumEvictReasons = 2;

const char* evictReasonName(EvictReason r);

/// Fixed-at-construction shape of a FlowTable.
struct FlowTableConfig {
  bool enabled = true;              ///< disabled => admit everything, track nothing
  std::size_t budget_bytes = 1u << 20;  ///< total entry storage budget (1 MiB default)
  unsigned shards = 8;              ///< rounded down to a power of two, >= 1
  EvictPolicy policy = EvictPolicy::kLru;
  bool shed_enabled = false;        ///< arm the load-shedding layer
  double shed_high_water = 0.90;    ///< occupancy fraction that engages shedding
  double shed_low_water = 0.75;     ///< occupancy fraction that disengages it
  double shed_admit_fraction = 0.125;  ///< tiebreak: fraction of new flows still admitted
  std::uint64_t seed = 0x5eedf10eULL;  ///< seeds random eviction + shed tiebreak
};

/// Outcome of admit().
struct AdmitResult {
  enum class Status : std::uint8_t {
    kAdmitted,  ///< flow present (existing or freshly inserted); frame may proceed
    kShed,      ///< new flow rejected by the shedding layer; frame must not enter
  };
  Status status = Status::kAdmitted;
  bool inserted = false;   ///< admission created the entry
  bool evicted = false;    ///< creating the entry displaced a victim
  std::uint64_t gen = 0;   ///< generation stamp the frame must carry to release()
  /// Key of the displaced flow when `evicted` (kNoVictim otherwise). The
  /// simulator uses it to cold-reset the victim's affinity state — losing
  /// the table entry means losing the warm per-flow footprint too.
  std::uint32_t victim_key = kNoVictim;
  static constexpr std::uint32_t kNoVictim = 0xffffffffu;
};

/// Monotonic counters snapshot (all exact; see determinism doctrine above).
struct FlowTableStats {
  std::uint64_t inserts = 0;          ///< new-flow entries created
  std::uint64_t hits = 0;             ///< admissions to flows already present
  std::array<std::uint64_t, kNumEvictReasons> evicted_by_reason{};
  std::uint64_t evicted_inflight = 0; ///< frames orphaned by evictions (pre-counted)
  std::uint64_t shed = 0;             ///< new-flow admissions shed
  std::uint64_t stale_releases = 0;   ///< release() calls that missed (orphaned frames)
  std::uint64_t occupancy = 0;        ///< live entries right now
  std::uint64_t capacity = 0;         ///< fixed entry capacity (from the byte budget)
  std::uint64_t shed_engaged = 0;     ///< times the hysteresis latch switched on

  [[nodiscard]] std::uint64_t evictions() const {
    std::uint64_t total = 0;
    for (const auto v : evicted_by_reason) total += v;
    return total;
  }
};

/// Reusable high/low-water hysteresis latch for auxiliary shed-pressure
/// signals (e.g. queue depth in the engines). Relaxed atomics: pressure
/// signals other than table occupancy are timing-dependent by nature and
/// are kept out of the determinism-pinned configurations.
class ShedLatch {
 public:
  /// Feeds the current level; returns whether the latch is engaged.
  bool update(std::uint64_t level, std::uint64_t high, std::uint64_t low) noexcept {
    bool engaged = on_.load(std::memory_order_relaxed);
    if (!engaged) {
      if (high > 0 && level >= high) {
        on_.store(true, std::memory_order_relaxed);
        engaged = true;
      }
    } else if (level <= low) {
      on_.store(false, std::memory_order_relaxed);
      engaged = false;
    }
    return engaged;
  }
  [[nodiscard]] bool on() const noexcept { return on_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> on_{false};
};

/// Bounded sharded flow table. Thread-safe; see class comment for which
/// paths preserve determinism.
class FlowTable {
 public:
  explicit FlowTable(const FlowTableConfig& config);

  /// Admits one frame for `key` (stream id). Looks the flow up; creates it
  /// (possibly evicting) when absent; sheds instead when the shedding layer
  /// is armed, pressure is high (internal occupancy latch or
  /// `shed_pressure`), the flow is NOT already established, and the seeded
  /// tiebreak selects it. On kAdmitted the per-flow in-flight count is
  /// incremented and `gen` must travel with the frame.
  AdmitResult admit(std::uint32_t key, bool shed_pressure = false);

  /// Releases one in-flight frame for `key` at generation `gen`. Returns
  /// true when the entry still exists at that generation (count
  /// decremented); false when the flow was evicted in the meantime — the
  /// frame was already accounted under evicted_inflight and the caller must
  /// not count it anywhere else.
  bool release(std::uint32_t key, std::uint64_t gen);

  /// True when the occupancy-driven shedding latch is currently engaged.
  [[nodiscard]] bool shedActive() const {
    return shedding_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] FlowTableStats stats() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] unsigned shardCount() const { return num_shards_; }
  [[nodiscard]] const FlowTableConfig& config() const { return config_; }

 private:
  struct Entry {
    std::uint32_t key = kEmptyKey;
    std::uint32_t inflight = 0;
    std::uint64_t gen = 0;         ///< insertion sequence; unique per insert
    std::uint64_t last_admit = 0;  ///< admission-order recency (LRU policy)
  };
  static constexpr std::uint32_t kEmptyKey = 0xffffffffu;

  struct alignas(64) Shard {
    // One lockdep node for every shard: the discipline is per-class (shards
    // are locked one at a time, inside any engine stack mutex), so two
    // shards nested would surface as a self-edge — exactly the report we
    // want for that bug.
    Mutex mu{"FlowTable::Shard::mu"};
    std::vector<Entry> slots AFF_GUARDED_BY(mu);
    std::uint64_t tick AFF_GUARDED_BY(mu) = 0;      ///< admission clock
    std::uint64_t next_gen AFF_GUARDED_BY(mu) = 1;  ///< insertion sequence
    Rng rng AFF_GUARDED_BY(mu){0};                  ///< random-policy picks
    std::uint64_t inserts AFF_GUARDED_BY(mu) = 0;
    std::uint64_t hits AFF_GUARDED_BY(mu) = 0;
    std::array<std::uint64_t, kNumEvictReasons> evicted_by_reason AFF_GUARDED_BY(mu){};
    std::uint64_t evicted_inflight AFF_GUARDED_BY(mu) = 0;
    std::uint64_t stale_releases AFF_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] std::uint32_t shardOf(std::uint64_t h) const {
    return static_cast<std::uint32_t>(h & (num_shards_ - 1));
  }
  /// True when this new-flow admission should be shed (tiebreak applied).
  [[nodiscard]] bool shedSelects(std::uint32_t key) const;
  /// Updates the occupancy hysteresis latch after occupancy changed.
  void updateShedLatch();

  FlowTableConfig config_;
  unsigned num_shards_ = 1;
  std::size_t slots_per_shard_ = 0;
  std::size_t capacity_ = 0;
  unsigned probe_window_ = 8;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> occupancy_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_engaged_{0};
  std::atomic<bool> shedding_{false};
  std::uint64_t shed_high_entries_ = 0;
  std::uint64_t shed_low_entries_ = 0;
  /// Sentinel cut meaning "admit fraction 1.0: never shed".
  static constexpr std::uint64_t kNeverShed = 0xffffffffffffffffULL;
  std::uint64_t shed_admit_cut_ = 0;  ///< tiebreak threshold in 64-bit hash space
};

}  // namespace affinity::flow
