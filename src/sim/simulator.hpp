// simulator.hpp — discrete-event simulation kernel.
//
// A single-threaded event calendar: events are (time, callback) pairs,
// executed in nondecreasing time order with FIFO tie-breaking (events
// scheduled earlier at the same timestamp run first — this makes simulation
// runs fully deterministic for a given seed). Cancellation is lazy: a
// cancelled event stays in the heap but is skipped when popped.
//
// Time is a double in *microseconds* throughout this codebase: the paper's
// packet service times are hundreds of microseconds, so µs keeps the
// magnitudes readable and well within double precision for runs of many
// simulated seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"

namespace affinity {

/// Simulated time in microseconds.
using SimTime = double;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert (cancel() on them is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// The event calendar. Not thread-safe (the paper's model is a sequential
/// simulation of a parallel machine; real parallelism lives in src/runtime).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now()). Returns a
  /// handle usable with cancel().
  EventHandle schedule(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  EventHandle scheduleAfter(SimTime delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event was pending (and is
  /// now guaranteed not to run), false if it already ran, was already
  /// cancelled, or the handle is inert.
  bool cancel(EventHandle h) noexcept;

  /// Runs events with timestamp <= `until`; afterwards the clock reads
  /// exactly `until` (even if the queue drained early). Returns the number
  /// of events executed.
  std::uint64_t runUntil(SimTime until);

  /// Runs all events to quiescence.
  std::uint64_t runAll();

  /// Executes at most one event. Returns false if none pending.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pendingCount() const noexcept { return pending_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executedCount() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the earliest non-cancelled entry; false if none.
  bool popNext(Entry& out);
  /// Time of the earliest non-cancelled entry; discards cancelled prefix.
  bool peekTime(SimTime& at);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // seqs of live events
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace affinity
