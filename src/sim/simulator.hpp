// simulator.hpp — discrete-event simulation kernel.
//
// A single-threaded event calendar: events are (time, callback) pairs,
// executed in nondecreasing time order with FIFO tie-breaking (events
// scheduled earlier at the same timestamp run first — this makes simulation
// runs fully deterministic for a given seed).
//
// Hot-path design (the whole repo's figure reproductions funnel millions of
// events through here; the seed kernel paid a std::function heap allocation,
// an unordered_set insert/erase, and O(log n) binary-heap sifts per event):
//   * Callbacks live in EventCallback — small-buffer-optimized type erasure,
//     no per-event heap allocation for the simulation's capture sizes
//     (oversized captures fall back to pooled storage).
//   * Every pending event occupies a generation-stamped slot recycled
//     through a free list; an EventHandle is (slot, seq) and is valid iff
//     the slot still carries that seq. cancel() is O(1) and eager: the
//     event is unlinked immediately, leaving no tombstones.
//   * The calendar is a Brown-style calendar queue: a power-of-two ring of
//     unsorted buckets, each covering a `width_`-µs window of the current
//     "year". Enqueue appends to the target bucket (O(1)); dequeue scans
//     the cursor bucket for the (time, seq)-minimum among entries whose
//     assigned window has arrived. Bucket count and width retune from the
//     live event population (on growth and on empty-year rotations), so
//     both operations are O(1) amortized.
//   * Buckets are structure-of-arrays: the hot dequeue scan touches three
//     dense parallel arrays (time, generation seq, assigned window — 24
//     bytes per entry instead of a 32-byte key struct), while the cold
//     fields (slot id, the cache-line-sized callback) sit in parallel
//     arrays touched only on pop/cancel of that one entry.
//   * Admission is batched: schedule() parks the event in a small staging
//     buffer (the handle is live immediately; cancel of a staged event is
//     O(1) via a sentinel bucket id) and the staged cohort is flushed to
//     the calendar in bucket-grouped order right before any operation that
//     needs the dequeue minimum. N same-epoch schedules thus amortize one
//     capacity check + one bucket touch per target bucket instead of
//     paying the full insert path N times.
// Bucketing and staging affect only performance, never order: the dequeue
// minimum is computed exactly on (time, seq), so runs are bit-for-bit
// identical to the seed kernel (locked in by tests/determinism_test.cpp).
//
// Time is a double in *microseconds* throughout this codebase: the paper's
// packet service times are hundreds of microseconds, so µs keeps the
// magnitudes readable and well within double precision for runs of many
// simulated seconds.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_callback.hpp"
#include "util/check.hpp"

namespace affinity {

/// Simulated time in microseconds.
using SimTime = double;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert (cancel() on them is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t seq) noexcept : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  // generation stamp: matches the slot iff still pending
};

/// The event calendar. Not thread-safe (the paper's model is a sequential
/// simulation of a parallel machine; real parallelism lives in src/runtime,
/// in core/sweep_runner, and in core/parallel_sim — all of which run
/// independent calendars per thread).
class Simulator {
 public:
  Simulator() { initBuckets(kMinBuckets, 1.0); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` (any void() callable) to run at absolute time `at`
  /// (>= now()). Returns a handle usable with cancel(). The event is
  /// staged for batched admission; staging is invisible to callers
  /// (handles are live immediately, ordering is exact).
  template <typename F>
  EventHandle schedule(SimTime at, F&& fn) {
    AFF_CHECK(at >= now_);
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = allocSlot();
    std::uint64_t assigned = windowOf(at);
    if (assigned < cursor_) assigned = cursor_;  // competes in the current window
    if (staged_keys_.size() == staged_keys_.capacity()) growStaging();
    try {
      staged_fns_.emplace_back(std::forward<F>(fn));  // constructed in place
    } catch (...) {
      freeSlot(slot);
      throw;
    }
    staged_keys_.push_back(StagedKey{at, seq, assigned, slot});  // nothrow: reserved
    slots_[slot] = Slot{seq, kStagedBucket,
                        static_cast<std::uint32_t>(staged_keys_.size() - 1)};
    ++live_;
    if (staged_keys_.size() >= kAdmitBatch) flushAdmissions();
    return EventHandle(slot, seq);
  }

  /// Schedules `fn` to run `delay` (>= 0) after now().
  template <typename F>
  EventHandle scheduleAfter(SimTime delay, F&& fn) {
    return schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns true if the event was pending (and is
  /// now guaranteed not to run), false if it already ran, was already
  /// cancelled, or the handle is inert. Works identically on staged and
  /// admitted events.
  bool cancel(EventHandle h) noexcept;

  /// Runs events with timestamp <= `until`; afterwards the clock reads
  /// exactly `until` (even if the queue drained early). Returns the number
  /// of events executed.
  std::uint64_t runUntil(SimTime until);

  /// Runs all events to quiescence.
  std::uint64_t runAll();

  /// Executes at most one event. Returns false if none pending.
  bool step();

  /// Number of pending (non-cancelled) events, staged or admitted.
  [[nodiscard]] std::size_t pendingCount() const noexcept { return live_; }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executedCount() const noexcept { return executed_; }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  /// Staged-admission flush threshold: large enough that a burst of
  /// same-epoch schedules (arrival batches, the run() setup loop) amortizes
  /// the per-bucket capacity checks, small enough that the staging buffer
  /// stays L1-resident.
  static constexpr std::size_t kAdmitBatch = 64;

  // Structure-of-arrays bucket. The dequeue scan walks at/seq/assigned only
  // (24 dense bytes per entry); slot and the cache-line-sized callback are
  // cold, touched only when an entry is popped, moved, or cancelled. All
  // five arrays are kept in lockstep (grow() reserves them together so an
  // enqueue can't be torn by a throwing callback move).
  struct Bucket {
    std::vector<SimTime> at;
    std::vector<std::uint64_t> seq;       // FIFO tie-break
    std::vector<std::uint64_t> assigned;  // global (un-masked) window index
    std::vector<std::uint32_t> slot;
    std::vector<EventCallback> fns;

    [[nodiscard]] std::size_t size() const noexcept { return at.size(); }

    void reserveAll(std::size_t cap) {
      fns.reserve(cap);
      slot.reserve(cap);
      assigned.reserve(cap);
      seq.reserve(cap);
      at.reserve(cap);
    }

    /// Ensures room for `extra` more entries (geometric growth).
    void growFor(std::size_t extra) {
      const std::size_t need = size() + extra;
      if (need <= at.capacity() && need <= fns.capacity()) return;
      reserveAll(std::max({need, std::size_t{4}, at.capacity() * 2}));
    }

    /// Appends one entry; all capacity must already be reserved except for
    /// the callback, which is emplaced first so a throw leaves the arrays
    /// in lockstep.
    void appendReserved(SimTime t, std::uint64_t s, std::uint64_t asg, std::uint32_t sl,
                        EventCallback&& fn) noexcept {
      fns.push_back(std::move(fn));
      slot.push_back(sl);
      assigned.push_back(asg);
      seq.push_back(s);
      at.push_back(t);
    }
  };
  // Handle table entry: seq stamps the generation, (bucket, index) locates
  // the event for O(1) eager cancellation. bucket == kStagedBucket means
  // the event still sits in the admission staging buffer at `index`.
  // Maintained on every entry move.
  struct Slot {
    std::uint64_t seq = 0;  // 0 = free
    std::uint32_t bucket = 0;
    std::uint32_t index = 0;
  };
  // A staged (scheduled but not yet admitted) event's hot fields; the
  // callback rides in the parallel staged_fns_ array.
  struct StagedKey {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t assigned;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kStagedBucket = ~std::uint32_t{0};

  [[nodiscard]] std::uint64_t windowOf(SimTime at) const noexcept {
    return static_cast<std::uint64_t>(at * inv_width_);
  }

  // Free slots form an intrusive list threaded through Slot::index.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::uint32_t allocSlot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].index;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void freeSlot(std::uint32_t slot) noexcept {
    slots_[slot].seq = 0;
    slots_[slot].index = free_head_;
    free_head_ = slot;
  }

  void growStaging() {
    const std::size_t cap = std::max<std::size_t>(16, staged_keys_.capacity() * 2);
    staged_fns_.reserve(cap);
    staged_keys_.reserve(cap);
  }

  /// Swap-removes bucket entry `index` (all five arrays), fixing the moved
  /// entry's slot.
  void removeEntry(Bucket& b, std::uint32_t bucket, std::uint32_t index) noexcept {
    const std::uint32_t last = static_cast<std::uint32_t>(b.size() - 1);
    if (index != last) {
      b.at[index] = b.at[last];
      b.seq[index] = b.seq[last];
      b.assigned[index] = b.assigned[last];
      b.slot[index] = b.slot[last];
      b.fns[index] = std::move(b.fns[last]);
      Slot& moved = slots_[b.slot[index]];
      moved.bucket = bucket;
      moved.index = index;
    }
    b.at.pop_back();
    b.seq.pop_back();
    b.assigned.pop_back();
    b.slot.pop_back();
    b.fns.pop_back();
  }

  /// Admits every staged event to the calendar, grouped by target bucket so
  /// a cohort pays one capacity check per bucket. Called before any
  /// operation that needs the dequeue minimum; a no-op when nothing is
  /// staged. May trigger rebuild() when the live population outgrows the
  /// ring.
  void flushAdmissions();

  /// Index of the (at, seq)-minimum entry of `b` whose window has arrived
  /// (assigned == cursor_); -1 if none.
  [[nodiscard]] int minQualifying(const Bucket& b) const noexcept;

  /// Smallest assigned window over all pending events (live_ must be > 0
  /// and staging empty).
  [[nodiscard]] std::uint64_t minAssigned() const noexcept;

  /// Reacts to a full empty pass of the ring: jumps the cursor to the next
  /// populated window, or retunes the calendar if this keeps happening.
  void onEmptyRotation();

  /// Pops the earliest event into (at, fn); false if none. The event's slot
  /// is released before returning, so from the callback's point of view the
  /// event is no longer pending (cancel on it fails).
  bool popNext(SimTime& at, EventCallback& fn);
  /// Time of the earliest pending event; false if none.
  bool peekTime(SimTime& at);

  void initBuckets(std::size_t nbuckets, double width);
  /// Re-buckets every pending event with a bucket count sized to the live
  /// population and a width retuned to its time span. Called on growth and
  /// on empty-year rotations (cheap and rare; amortized O(1) per event).
  /// Requires an empty staging buffer.
  void rebuild();

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;        // bucket count - 1 (power of two)
  double width_ = 1.0;          // µs covered by one bucket window
  double inv_width_ = 1.0;
  std::uint64_t cursor_ = 0;    // global window index the dequeue scan is at
  std::uint32_t rotations_ = 0; // empty-year rotations since the last rebuild
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  // Batched-admission staging buffer (keys + parallel callbacks) and the
  // scratch index array flushAdmissions() sorts to group by target bucket.
  std::vector<StagedKey> staged_keys_;
  std::vector<EventCallback> staged_fns_;
  std::vector<std::uint32_t> admit_order_;
};

}  // namespace affinity
