// simulator.hpp — discrete-event simulation kernel.
//
// A single-threaded event calendar: events are (time, callback) pairs,
// executed in nondecreasing time order with FIFO tie-breaking (events
// scheduled earlier at the same timestamp run first — this makes simulation
// runs fully deterministic for a given seed).
//
// Hot-path design (the whole repo's figure reproductions funnel millions of
// events through here; the seed kernel paid a std::function heap allocation,
// an unordered_set insert/erase, and O(log n) binary-heap sifts per event):
//   * Callbacks live in EventCallback — small-buffer-optimized type erasure,
//     no per-event heap allocation for the simulation's capture sizes
//     (oversized captures fall back to pooled storage).
//   * Every pending event occupies a generation-stamped slot recycled
//     through a free list; an EventHandle is (slot, seq) and is valid iff
//     the slot still carries that seq. cancel() is O(1) and eager: the
//     event is unlinked immediately, leaving no tombstones.
//   * The calendar is a Brown-style calendar queue: a power-of-two ring of
//     unsorted buckets, each covering a `width_`-µs window of the current
//     "year". Enqueue appends to the target bucket (O(1)); dequeue scans
//     the cursor bucket for the (time, seq)-minimum among entries whose
//     assigned window has arrived. Bucket count and width retune from the
//     live event population (on growth and on empty-year rotations), so
//     both operations are O(1) amortized — measured ~2-4x faster than the
//     binary/4-ary heaps it replaced, whose log-depth comparison sifts
//     mispredict heavily on random keys.
// Bucketing affects only performance, never order: the dequeue minimum is
// computed exactly on (time, seq), so runs are bit-for-bit identical to the
// seed kernel (locked in by tests/determinism_test.cpp).
//
// Time is a double in *microseconds* throughout this codebase: the paper's
// packet service times are hundreds of microseconds, so µs keeps the
// magnitudes readable and well within double precision for runs of many
// simulated seconds.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_callback.hpp"
#include "util/check.hpp"

namespace affinity {

/// Simulated time in microseconds.
using SimTime = double;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert (cancel() on them is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t seq) noexcept : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  // generation stamp: matches the slot iff still pending
};

/// The event calendar. Not thread-safe (the paper's model is a sequential
/// simulation of a parallel machine; real parallelism lives in src/runtime
/// and in core/sweep_runner, which runs independent calendars per thread).
class Simulator {
 public:
  Simulator() { initBuckets(kMinBuckets, 1.0); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` (any void() callable) to run at absolute time `at`
  /// (>= now()). Returns a handle usable with cancel().
  template <typename F>
  EventHandle schedule(SimTime at, F&& fn) {
    AFF_CHECK(at >= now_);
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = allocSlot();
    std::uint64_t assigned = windowOf(at);
    if (assigned < cursor_) assigned = cursor_;  // competes in the current window
    Bucket& b = buckets_[assigned & mask_];
    if (b.keys.size() == b.keys.capacity()) b.grow();
    try {
      b.fns.emplace_back(std::forward<F>(fn));  // constructed in place, no relocate
    } catch (...) {
      freeSlot(slot);
      throw;
    }
    b.keys.push_back(Key{at, seq, assigned, slot});  // nothrow: capacity reserved
    slots_[slot] = Slot{seq, static_cast<std::uint32_t>(assigned & mask_),
                       static_cast<std::uint32_t>(b.keys.size() - 1)};
    ++live_;
    if (live_ > 4 * (mask_ + 1)) rebuild();
    return EventHandle(slot, seq);
  }

  /// Schedules `fn` to run `delay` (>= 0) after now().
  template <typename F>
  EventHandle scheduleAfter(SimTime delay, F&& fn) {
    return schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns true if the event was pending (and is
  /// now guaranteed not to run), false if it already ran, was already
  /// cancelled, or the handle is inert.
  bool cancel(EventHandle h) noexcept;

  /// Runs events with timestamp <= `until`; afterwards the clock reads
  /// exactly `until` (even if the queue drained early). Returns the number
  /// of events executed.
  std::uint64_t runUntil(SimTime until);

  /// Runs all events to quiescence.
  std::uint64_t runAll();

  /// Executes at most one event. Returns false if none pending.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pendingCount() const noexcept { return live_; }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executedCount() const noexcept { return executed_; }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  struct Key {
    SimTime at;
    std::uint64_t seq;       // FIFO tie-break
    std::uint64_t assigned;  // global (un-masked) window index this entry waits in
    std::uint32_t slot;
  };
  // Structure-of-arrays bucket: dequeue scans touch only the dense 32-byte
  // keys; the cache-line-sized callbacks sit in a parallel array indexed the
  // same way and are only touched on pop/cancel of that entry.
  struct Bucket {
    std::vector<Key> keys;
    std::vector<EventCallback> fns;

    // Grows both arrays together so an enqueue keeps keys/fns in lockstep
    // even if a callback's move constructor throws mid-growth.
    void grow() {
      const std::size_t cap = std::max<std::size_t>(4, keys.capacity() * 2);
      fns.reserve(cap);
      keys.reserve(cap);
    }
  };
  // Handle table entry: seq stamps the generation, (bucket, index) locates
  // the event for O(1) eager cancellation. Maintained on every entry move.
  struct Slot {
    std::uint64_t seq = 0;  // 0 = free
    std::uint32_t bucket = 0;
    std::uint32_t index = 0;
  };

  [[nodiscard]] std::uint64_t windowOf(SimTime at) const noexcept {
    return static_cast<std::uint64_t>(at * inv_width_);
  }

  // Free slots form an intrusive list threaded through Slot::index.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::uint32_t allocSlot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].index;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void freeSlot(std::uint32_t slot) noexcept {
    slots_[slot].seq = 0;
    slots_[slot].index = free_head_;
    free_head_ = slot;
  }

  /// Swap-removes bucket entry `index` (keys and callback), fixing the moved
  /// entry's slot.
  void removeEntry(Bucket& b, std::uint32_t bucket, std::uint32_t index) noexcept {
    const std::uint32_t last = static_cast<std::uint32_t>(b.keys.size() - 1);
    if (index != last) {
      b.keys[index] = b.keys[last];
      b.fns[index] = std::move(b.fns[last]);
      Slot& moved = slots_[b.keys[index].slot];
      moved.bucket = bucket;
      moved.index = index;
    }
    b.keys.pop_back();
    b.fns.pop_back();
  }

  /// Index of the (at, seq)-minimum entry of `b` whose window has arrived
  /// (assigned == cursor_); -1 if none.
  [[nodiscard]] int minQualifying(const Bucket& b) const noexcept;

  /// Smallest assigned window over all pending events (live_ must be > 0).
  [[nodiscard]] std::uint64_t minAssigned() const noexcept;

  /// Reacts to a full empty pass of the ring: jumps the cursor to the next
  /// populated window, or retunes the calendar if this keeps happening.
  void onEmptyRotation();

  /// Pops the earliest event into (at, fn); false if none. The event's slot
  /// is released before returning, so from the callback's point of view the
  /// event is no longer pending (cancel on it fails).
  bool popNext(SimTime& at, EventCallback& fn);
  /// Time of the earliest pending event; false if none.
  bool peekTime(SimTime& at);

  void initBuckets(std::size_t nbuckets, double width);
  /// Re-buckets every pending event with a bucket count sized to the live
  /// population and a width retuned to its time span. Called on growth and
  /// on empty-year rotations (cheap and rare; amortized O(1) per event).
  void rebuild();

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;        // bucket count - 1 (power of two)
  double width_ = 1.0;          // µs covered by one bucket window
  double inv_width_ = 1.0;
  std::uint64_t cursor_ = 0;    // global window index the dequeue scan is at
  std::uint32_t rotations_ = 0; // empty-year rotations since the last rebuild
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace affinity
