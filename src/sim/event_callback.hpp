// event_callback.hpp — small-buffer-optimized event callback.
//
// The simulator's previous hot path paid one heap allocation per scheduled
// event (std::function's type erasure spills even modest lambda captures).
// EventCallback stores the capture inline in a fixed 48-byte buffer — large
// enough for every callback the protocol simulation schedules (a `this`
// pointer plus a handful of scalars) and for a std::function<void()> — and
// type-erases invoke/relocate/destroy through a single static ops table per
// callable type. Oversized captures fall back to heap storage recycled
// through per-thread size-bucketed free lists, so even the slow path
// allocates from the system at most once per bucket high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace affinity {

namespace cb_detail {

// Per-thread free lists of recycled heap blocks for oversized captures,
// bucketed by power-of-two size from 64 B to 4 KiB (larger blocks go
// straight to the system allocator). Thread-local keeps the pool lock-free:
// a Simulator is single-threaded, and SweepRunner gives each worker thread
// its own simulators.
inline constexpr std::size_t kMinBlock = 64;
inline constexpr std::size_t kMaxBlock = 4096;
inline constexpr std::size_t kBuckets = 7;  // 64,128,256,512,1024,2048,4096

struct FreeBlock {
  FreeBlock* next;
};

struct Pool {
  FreeBlock* buckets[kBuckets] = {};
  ~Pool() {
    for (FreeBlock* head : buckets) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }
};

inline Pool& pool() noexcept {
  thread_local Pool p;
  return p;
}

constexpr int bucketOf(std::size_t bytes) noexcept {
  std::size_t b = kMinBlock;
  for (int i = 0; i < static_cast<int>(kBuckets); ++i, b <<= 1)
    if (bytes <= b) return i;
  return -1;  // oversize: system allocator
}

inline void* poolAlloc(std::size_t bytes) {
  const int bucket = bucketOf(bytes);
  if (bucket < 0) return ::operator new(bytes);
  Pool& p = pool();
  if (FreeBlock* head = p.buckets[bucket]) {
    p.buckets[bucket] = head->next;
    return head;
  }
  return ::operator new(kMinBlock << bucket);
}

inline void poolFree(void* ptr, std::size_t bytes) noexcept {
  const int bucket = bucketOf(bytes);
  if (bucket < 0) {
    ::operator delete(ptr);
    return;
  }
  auto* block = static_cast<FreeBlock*>(ptr);
  Pool& p = pool();
  block->next = p.buckets[bucket];
  p.buckets[bucket] = block;
}

}  // namespace cb_detail

/// Move-only type-erased `void()` callable with inline small-buffer storage.
class EventCallback {
 public:
  /// Inline capture capacity. Sized so the whole object is one cache line.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): callable sink
    using Fn = std::decay_t<F>;
    static_assert(std::is_move_constructible_v<Fn>,
                  "event callbacks must be move-constructible");
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inlineOps<Fn>;
    } else {
      void* mem = cb_detail::poolAlloc(sizeof(Fn));
      ::new (mem) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = mem;
      ops_ = &heapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      stealFrom(other);
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        stealFrom(other);
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  /// Destroys the held callable (releasing pooled storage), leaving empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// True when F's capture is stored inline (no allocation). For tests.
  template <typename F>
  [[nodiscard]] static constexpr bool fitsInline() noexcept {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t);
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* buf);
    // Move-constructs into `to` and destroys the source representation.
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* buf) noexcept;
    // Fast-path flags, checked with a (well-predicted) branch so the common
    // trivially-copyable captures skip the indirect relocate/destroy calls
    // entirely. The simulator moves callbacks on every bucket swap-remove,
    // so this is hot.
    bool trivial_relocate;  // relocate == memcpy of the inline buffer
    bool trivial_destroy;   // destroy is a no-op
  };

  // Relocates `other`'s callable into *this (ops_ already copied).
  void stealFrom(EventCallback& other) noexcept {
    if (ops_->trivial_relocate) {
      __builtin_memcpy(buf_, other.buf_, kInlineSize);
    } else {
      ops_->relocate(other.buf_, buf_);
    }
    other.ops_ = nullptr;
  }

  template <typename Fn>
  static constexpr Ops inlineOps = {
      [](unsigned char* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](unsigned char* from, unsigned char* to) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*src));
        src->~Fn();
      },
      [](unsigned char* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
      std::is_trivially_copyable_v<Fn>,
      std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static constexpr Ops heapOps = {
      [](unsigned char* buf) { (*static_cast<Fn*>(*reinterpret_cast<void**>(buf)))(); },
      [](unsigned char* from, unsigned char* to) noexcept {
        *reinterpret_cast<void**>(to) = *reinterpret_cast<void**>(from);  // steal
      },
      [](unsigned char* buf) noexcept {
        void* mem = *reinterpret_cast<void**>(buf);
        static_cast<Fn*>(mem)->~Fn();
        cb_detail::poolFree(mem, sizeof(Fn));
      },
      true,  // the owning pointer itself is memcpy-safe to steal
      false,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

static_assert(sizeof(EventCallback) == 64,
              "EventCallback should occupy exactly one cache line");
static_assert(EventCallback::kInlineSize >= sizeof(void*) &&
                  EventCallback::kInlineSize % alignof(std::max_align_t) == 0,
              "inline buffer must hold a heap pointer and keep max alignment");

}  // namespace affinity
