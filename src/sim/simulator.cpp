#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

namespace affinity {

int Simulator::minQualifying(const Bucket& b) const noexcept {
  int best = -1;
  double best_at = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = ~std::uint64_t{0};
  // SoA scan: three dense arrays, 24 bytes per entry. The callbacks (a
  // cache line each) and the slot ids are never touched here.
  const double* at = b.at.data();
  const std::uint64_t* seq = b.seq.data();
  const std::uint64_t* assigned = b.assigned.data();
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (assigned[i] != cursor_) continue;  // parked for a later pass of the ring
    // Branchless best-update: which of two random timestamps is smaller is
    // a coin flip, so a branch here mispredicts ~half the time.
    const bool better =
        (at[i] < best_at) | ((at[i] == best_at) & (seq[i] < best_seq));
    best = better ? static_cast<int>(i) : best;
    best_at = better ? at[i] : best_at;
    best_seq = better ? seq[i] : best_seq;
  }
  return best;
}

std::uint64_t Simulator::minAssigned() const noexcept {
  std::uint64_t mn = ~std::uint64_t{0};
  for (const Bucket& b : buckets_)
    for (std::uint64_t a : b.assigned) mn = std::min(mn, a);
  return mn;
}

void Simulator::flushAdmissions() {
  const std::size_t n = staged_keys_.size();
  if (n == 0) return;
  if (n == 1) {
    // Common interleaved schedule/step pattern: skip the grouping machinery.
    const StagedKey& k = staged_keys_[0];
    Bucket& b = buckets_[k.assigned & mask_];
    b.growFor(1);
    b.appendReserved(k.at, k.seq, k.assigned, k.slot, std::move(staged_fns_[0]));
    slots_[k.slot] = Slot{k.seq, static_cast<std::uint32_t>(k.assigned & mask_),
                          static_cast<std::uint32_t>(b.size() - 1)};
  } else {
    // Group the cohort by target bucket so each bucket pays one capacity
    // check. Sorting a u32 index array of <= kAdmitBatch entries is cheap;
    // intra-bucket order is irrelevant (dequeue order is exact on
    // (at, seq)), but (bucket, index) makes the sort deterministic.
    admit_order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) admit_order_[i] = static_cast<std::uint32_t>(i);
    std::sort(admit_order_.begin(), admit_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint64_t ba = staged_keys_[a].assigned & mask_;
                const std::uint64_t bb = staged_keys_[b].assigned & mask_;
                return ba != bb ? ba < bb : a < b;
              });
    // Pass 1: reserve every target bucket up front. A bad_alloc here leaves
    // the calendar untouched and the cohort still staged.
    for (std::size_t i = 0; i < n;) {
      const std::uint64_t bucket = staged_keys_[admit_order_[i]].assigned & mask_;
      std::size_t j = i;
      while (j < n && (staged_keys_[admit_order_[j]].assigned & mask_) == bucket) ++j;
      buckets_[bucket].growFor(j - i);
      i = j;
    }
    // Pass 2: append (nothrow — capacity reserved, callback moves are
    // noexcept) and point the slots at their admitted positions.
    for (std::size_t i = 0; i < n; ++i) {
      const StagedKey& k = staged_keys_[admit_order_[i]];
      Bucket& b = buckets_[k.assigned & mask_];
      b.appendReserved(k.at, k.seq, k.assigned, k.slot,
                       std::move(staged_fns_[admit_order_[i]]));
      slots_[k.slot] = Slot{k.seq, static_cast<std::uint32_t>(k.assigned & mask_),
                            static_cast<std::uint32_t>(b.size() - 1)};
    }
  }
  staged_keys_.clear();
  staged_fns_.clear();
  if (live_ > 4 * (mask_ + 1)) rebuild();
}

bool Simulator::cancel(EventHandle h) noexcept {
  if (!h.valid()) return false;
  if (h.slot_ >= slots_.size()) return false;
  const Slot s = slots_[h.slot_];
  if (s.seq != h.seq_) return false;  // already ran, cancelled, or slot reused
  if (s.bucket == kStagedBucket) {
    // Still in the admission staging buffer: swap-remove it there.
    const auto last = static_cast<std::uint32_t>(staged_keys_.size() - 1);
    if (s.index != last) {
      staged_keys_[s.index] = staged_keys_[last];
      staged_fns_[s.index] = std::move(staged_fns_[last]);
      slots_[staged_keys_[s.index].slot].index = s.index;
    }
    staged_keys_.pop_back();
    staged_fns_.pop_back();
  } else {
    removeEntry(buckets_[s.bucket], s.bucket, s.index);
  }
  freeSlot(h.slot_);
  --live_;
  return true;
}

// Shared rotation handler for the two dequeue scans: a full pass of the ring
// found no event in the current year, i.e. the next event is more than
// nbuckets windows ahead. Jump the cursor straight to its window (O(nbuckets
// + live)). If that keeps happening — or the ring is badly oversized for the
// population — the width/size are mistuned, so pay for a full retune.
void Simulator::onEmptyRotation() {
  if ((live_ < (mask_ + 1) / 4 && mask_ + 1 > kMinBuckets) || ++rotations_ >= 4) {
    rebuild();
  } else {
    cursor_ = minAssigned();
  }
}

bool Simulator::popNext(SimTime& at, EventCallback& fn) {
  flushAdmissions();
  if (live_ == 0) return false;
  std::size_t scanned = 0;
  for (;;) {
    Bucket& b = buckets_[cursor_ & mask_];
    // Overlap the callback-array fetch with the key scan: if this bucket
    // has the next event, its callback is about to be moved out.
    __builtin_prefetch(b.fns.data());
    const int best = minQualifying(b);
    if (best >= 0) {
      const auto i = static_cast<std::size_t>(best);
      at = b.at[i];
      // Move the callback out before unlinking: the callback may re-enter
      // schedule(), which can reuse the slot and rebuild the calendar.
      fn = std::move(b.fns[i]);
      freeSlot(b.slot[i]);
      removeEntry(b, static_cast<std::uint32_t>(cursor_ & mask_),
                  static_cast<std::uint32_t>(best));
      --live_;
      return true;
    }
    ++cursor_;
    if (++scanned > mask_) {
      onEmptyRotation();
      scanned = 0;
    }
  }
}

bool Simulator::peekTime(SimTime& at) {
  flushAdmissions();
  if (live_ == 0) return false;
  std::size_t scanned = 0;
  for (;;) {
    const Bucket& b = buckets_[cursor_ & mask_];
    const int best = minQualifying(b);
    if (best >= 0) {
      at = b.at[static_cast<std::size_t>(best)];
      return true;
    }
    ++cursor_;
    if (++scanned > mask_) {
      onEmptyRotation();
      scanned = 0;
    }
  }
}

bool Simulator::step() {
  SimTime at;
  EventCallback fn;
  if (!popNext(at, fn)) return false;
  AFF_DCHECK(at >= now_);
  now_ = at;
  ++executed_;
  fn();
  return true;
}

std::uint64_t Simulator::runUntil(SimTime until) {
  std::uint64_t ran = 0;
  SimTime at;
  while (peekTime(at) && at <= until) {
    step();
    ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::runAll() {
  std::uint64_t ran = 0;
  while (step()) ++ran;
  return ran;
}

void Simulator::initBuckets(std::size_t nbuckets, double width) {
  buckets_.clear();
  buckets_.resize(nbuckets);
  mask_ = nbuckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  cursor_ = 0;
  rotations_ = 0;
}

void Simulator::rebuild() {
  AFF_DCHECK(staged_keys_.empty());
  std::vector<StagedKey> keys;
  std::vector<EventCallback> fns;
  keys.reserve(live_);
  fns.reserve(live_);
  for (Bucket& b : buckets_) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      keys.push_back(StagedKey{b.at[i], b.seq[i], b.assigned[i], b.slot[i]});
      fns.push_back(std::move(b.fns[i]));
    }
  }
  // Width: ~2 events per window on average, so a dequeue scans O(1) entries
  // and an empty-window rotation is rare. Any value is *correct* (ordering
  // is exact on (at, seq)); this only tunes scan lengths.
  double w = width_;
  if (keys.size() > 1) {
    double lo = keys.front().at;
    double hi = lo;
    for (const StagedKey& e : keys) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    if (hi > lo) w = (hi - lo) * 2.0 / static_cast<double>(keys.size());
  }
  if (!(w > 1e-9)) w = 1e-9;  // all-simultaneous events: keep windows finite
  // ~2 events per bucket: a handful of 24-byte scan entries share cache
  // lines, and half the bucket headers means half the header-array
  // footprint on large calendars.
  const std::size_t nb = std::bit_ceil(std::max(keys.size() / 2, kMinBuckets));
  initBuckets(nb, w);
  if (keys.empty()) {
    cursor_ = windowOf(now_);
    return;
  }
  std::uint64_t first = ~std::uint64_t{0};
  for (StagedKey& e : keys) {
    e.assigned = windowOf(e.at);
    first = std::min(first, e.assigned);
  }
  cursor_ = first;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Bucket& b = buckets_[keys[i].assigned & mask_];
    b.growFor(1);
    b.appendReserved(keys[i].at, keys[i].seq, keys[i].assigned, keys[i].slot,
                     std::move(fns[i]));
    Slot& s = slots_[keys[i].slot];
    s.bucket = static_cast<std::uint32_t>(keys[i].assigned & mask_);
    s.index = static_cast<std::uint32_t>(b.size() - 1);
  }
}

}  // namespace affinity
