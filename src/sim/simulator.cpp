#include "sim/simulator.hpp"

namespace affinity {

EventHandle Simulator::schedule(SimTime at, std::function<void()> fn) {
  AFF_CHECK(at >= now_);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(fn)});
  pending_.insert(seq);
  return EventHandle(seq);
}

bool Simulator::cancel(EventHandle h) noexcept {
  if (!h.valid()) return false;
  return pending_.erase(h.id_) == 1;  // heap entry is skipped lazily on pop
}

bool Simulator::popNext(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top is const; the element is immediately popped, so
    // moving out of it is safe.
    Entry& top = const_cast<Entry&>(heap_.top());
    if (pending_.erase(top.seq) == 0) {
      heap_.pop();  // was cancelled
      continue;
    }
    out = std::move(top);
    heap_.pop();
    return true;
  }
  return false;
}

bool Simulator::peekTime(SimTime& at) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (pending_.count(top.seq) == 0) {
      heap_.pop();
      continue;
    }
    at = top.at;
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!popNext(e)) return false;
  AFF_DCHECK(e.at >= now_);
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::uint64_t Simulator::runUntil(SimTime until) {
  std::uint64_t ran = 0;
  SimTime at;
  while (peekTime(at) && at <= until) {
    step();
    ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::runAll() {
  std::uint64_t ran = 0;
  while (step()) ++ran;
  return ran;
}

}  // namespace affinity
