#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

namespace affinity {

int Simulator::minQualifying(const Bucket& b) const noexcept {
  int best = -1;
  double best_at = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = ~std::uint64_t{0};
  const Key* keys = b.keys.data();
  const std::size_t n = b.keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Key& e = keys[i];
    if (e.assigned != cursor_) continue;  // parked for a later pass of the ring
    // Branchless best-update: which of two random timestamps is smaller is
    // a coin flip, so a branch here mispredicts ~half the time.
    const bool better =
        (e.at < best_at) | ((e.at == best_at) & (e.seq < best_seq));
    best = better ? static_cast<int>(i) : best;
    best_at = better ? e.at : best_at;
    best_seq = better ? e.seq : best_seq;
  }
  return best;
}

std::uint64_t Simulator::minAssigned() const noexcept {
  std::uint64_t mn = ~std::uint64_t{0};
  for (const Bucket& b : buckets_)
    for (const Key& e : b.keys) mn = std::min(mn, e.assigned);
  return mn;
}

bool Simulator::cancel(EventHandle h) noexcept {
  if (!h.valid()) return false;
  if (h.slot_ >= slots_.size()) return false;
  const Slot s = slots_[h.slot_];
  if (s.seq != h.seq_) return false;  // already ran, cancelled, or slot reused
  removeEntry(buckets_[s.bucket], s.bucket, s.index);
  freeSlot(h.slot_);
  --live_;
  return true;
}

// Shared rotation handler for the two dequeue scans: a full pass of the ring
// found no event in the current year, i.e. the next event is more than
// nbuckets windows ahead. Jump the cursor straight to its window (O(nbuckets
// + live)). If that keeps happening — or the ring is badly oversized for the
// population — the width/size are mistuned, so pay for a full retune.
void Simulator::onEmptyRotation() {
  if ((live_ < (mask_ + 1) / 4 && mask_ + 1 > kMinBuckets) || ++rotations_ >= 4) {
    rebuild();
  } else {
    cursor_ = minAssigned();
  }
}

bool Simulator::popNext(SimTime& at, EventCallback& fn) {
  if (live_ == 0) return false;
  std::size_t scanned = 0;
  for (;;) {
    Bucket& b = buckets_[cursor_ & mask_];
    // Overlap the callback-array fetch with the key scan: if this bucket
    // has the next event, its callback is about to be moved out.
    __builtin_prefetch(b.fns.data());
    const int best = minQualifying(b);
    if (best >= 0) {
      const Key e = b.keys[static_cast<std::size_t>(best)];
      at = e.at;
      // Move the callback out before unlinking: the callback may re-enter
      // schedule(), which can reuse the slot and rebuild the calendar.
      fn = std::move(b.fns[static_cast<std::size_t>(best)]);
      freeSlot(e.slot);
      removeEntry(b, static_cast<std::uint32_t>(cursor_ & mask_),
                  static_cast<std::uint32_t>(best));
      --live_;
      return true;
    }
    ++cursor_;
    if (++scanned > mask_) {
      onEmptyRotation();
      scanned = 0;
    }
  }
}

bool Simulator::peekTime(SimTime& at) {
  if (live_ == 0) return false;
  std::size_t scanned = 0;
  for (;;) {
    const Bucket& b = buckets_[cursor_ & mask_];
    const int best = minQualifying(b);
    if (best >= 0) {
      at = b.keys[static_cast<std::size_t>(best)].at;
      return true;
    }
    ++cursor_;
    if (++scanned > mask_) {
      onEmptyRotation();
      scanned = 0;
    }
  }
}

bool Simulator::step() {
  SimTime at;
  EventCallback fn;
  if (!popNext(at, fn)) return false;
  AFF_DCHECK(at >= now_);
  now_ = at;
  ++executed_;
  fn();
  return true;
}

std::uint64_t Simulator::runUntil(SimTime until) {
  std::uint64_t ran = 0;
  SimTime at;
  while (peekTime(at) && at <= until) {
    step();
    ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::runAll() {
  std::uint64_t ran = 0;
  while (step()) ++ran;
  return ran;
}

void Simulator::initBuckets(std::size_t nbuckets, double width) {
  buckets_.clear();
  buckets_.resize(nbuckets);
  mask_ = nbuckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  cursor_ = 0;
  rotations_ = 0;
}

void Simulator::rebuild() {
  std::vector<Key> keys;
  std::vector<EventCallback> fns;
  keys.reserve(live_);
  fns.reserve(live_);
  for (Bucket& b : buckets_) {
    for (std::size_t i = 0; i < b.keys.size(); ++i) {
      keys.push_back(b.keys[i]);
      fns.push_back(std::move(b.fns[i]));
    }
    b.keys.clear();
    b.fns.clear();
  }
  // Width: ~2 events per window on average, so a dequeue scans O(1) entries
  // and an empty-window rotation is rare. Any value is *correct* (ordering
  // is exact on (at, seq)); this only tunes scan lengths.
  double w = width_;
  if (keys.size() > 1) {
    double lo = keys.front().at;
    double hi = lo;
    for (const Key& e : keys) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    if (hi > lo) w = (hi - lo) * 2.0 / static_cast<double>(keys.size());
  }
  if (!(w > 1e-9)) w = 1e-9;  // all-simultaneous events: keep windows finite
  // ~2 events per bucket: two 32-byte keys share a cache line, and half the
  // bucket headers means half the header-array footprint on large calendars.
  const std::size_t nb = std::bit_ceil(std::max(keys.size() / 2, kMinBuckets));
  initBuckets(nb, w);
  if (keys.empty()) {
    cursor_ = windowOf(now_);
    return;
  }
  std::uint64_t first = ~std::uint64_t{0};
  for (Key& e : keys) {
    e.assigned = windowOf(e.at);
    first = std::min(first, e.assigned);
  }
  cursor_ = first;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Bucket& b = buckets_[keys[i].assigned & mask_];
    b.keys.push_back(keys[i]);
    b.fns.push_back(std::move(fns[i]));
    Slot& s = slots_[keys[i].slot];
    s.bucket = static_cast<std::uint32_t>(keys[i].assigned & mask_);
    s.index = static_cast<std::uint32_t>(b.keys.size() - 1);
  }
}

}  // namespace affinity
