// trace_io.hpp — record and replay arrival traces.
//
// The paper's workloads are synthetic (its in-memory drivers replayed
// generated arrivals); real deployments have measured traces (cf. Gusella's
// Ethernet measurements the paper cites for packet-size context). This
// module closes the loop: record a StreamSet's arrivals to a portable text
// file ("<time_us> <stream>" per line, '#' comments), read it back, and
// build a StreamSet that replays it deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/stream_set.hpp"

namespace affinity {

/// One packet arrival.
struct ArrivalRecord {
  double time_us;
  std::uint32_t stream;
};

/// Samples `set`'s arrivals over [0, duration_us). Records are returned in
/// nondecreasing time order; batches appear as repeated timestamps.
std::vector<ArrivalRecord> recordArrivals(const StreamSet& set, double duration_us,
                                          std::uint64_t seed);

/// Writes records to `path`. Aborts the process only on I/O failure returns:
/// returns false if the file cannot be written.
bool writeArrivalTrace(const std::string& path, const std::vector<ArrivalRecord>& records);

/// Reads a trace file; returns empty on missing/invalid file and sets
/// `error` (if non-null) to a description.
std::vector<ArrivalRecord> readArrivalTrace(const std::string& path,
                                            std::string* error = nullptr);

/// Replays one stream's recorded gaps (consecutive equal timestamps are
/// merged into batches). After the recording is exhausted no further
/// arrivals occur.
class TraceArrivals final : public ArrivalProcess {
 public:
  /// `gaps` are inter-event times; `batches[i]` packets arrive at event i.
  TraceArrivals(std::vector<double> gaps, std::vector<std::uint32_t> batches,
                double duration_us);

  Arrival next(Rng& rng) override;
  [[nodiscard]] double meanRatePerUs() const noexcept override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  std::vector<double> gaps_;
  std::vector<std::uint32_t> batches_;
  double duration_us_;
  std::uint64_t total_packets_;
  std::size_t pos_ = 0;
};

/// Builds a replaying StreamSet from records (streams are numbered densely:
/// the set has max(stream)+1 entries; streams with no records are given an
/// empty replay). `duration_us` bounds the recording (for rate reporting);
/// pass 0 to use the last record's time.
StreamSet makeTraceStreams(const std::vector<ArrivalRecord>& records, double duration_us = 0.0);

}  // namespace affinity
