#include "workload/stream_set.hpp"

#include <cmath>

#include "util/check.hpp"

namespace affinity {

double StreamSet::totalRatePerUs() const noexcept {
  double sum = 0.0;
  for (const auto& s : streams) sum += s->meanRatePerUs();
  return sum;
}

StreamSet StreamSet::clone() const {
  StreamSet out;
  out.streams.reserve(streams.size());
  for (const auto& s : streams) out.streams.push_back(s->clone());
  return out;
}

StreamSet makePoissonStreams(std::size_t count, double total_rate_per_us) {
  AFF_CHECK(count > 0);
  StreamSet set;
  const double per = total_rate_per_us / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(per));
  return set;
}

StreamSet makeBatchStreams(std::size_t count, double total_rate_per_us, double batch_mean,
                           bool geometric) {
  AFF_CHECK(count > 0);
  StreamSet set;
  const double per = total_rate_per_us / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i)
    set.streams.push_back(std::make_unique<BatchPoissonArrivals>(per, batch_mean, geometric));
  return set;
}

StreamSet makeTrainStreams(std::size_t count, double total_rate_per_us, double train_len_mean,
                           double intercar_gap_us) {
  AFF_CHECK(count > 0);
  StreamSet set;
  const double per = total_rate_per_us / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i)
    set.streams.push_back(
        std::make_unique<PacketTrainArrivals>(per, train_len_mean, intercar_gap_us));
  return set;
}

StreamSet makeHotColdStreams(std::size_t hot_count, std::size_t cold_count,
                             double total_rate_per_us, double hot_share) {
  AFF_CHECK(hot_count > 0 && cold_count > 0);
  AFF_CHECK(hot_share > 0.0 && hot_share < 1.0);
  StreamSet set;
  const double hot_per = total_rate_per_us * hot_share / static_cast<double>(hot_count);
  const double cold_per =
      total_rate_per_us * (1.0 - hot_share) / static_cast<double>(cold_count);
  for (std::size_t i = 0; i < hot_count; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(hot_per));
  for (std::size_t i = 0; i < cold_count; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(cold_per));
  return set;
}

StreamSet makeZipfStreams(std::size_t count, double total_rate_per_us, double alpha) {
  AFF_CHECK(count > 0);
  AFF_CHECK(alpha >= 0.0);
  double norm = 0.0;
  for (std::size_t i = 0; i < count; ++i)
    norm += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  StreamSet set;
  for (std::size_t i = 0; i < count; ++i) {
    const double share = (1.0 / std::pow(static_cast<double>(i + 1), alpha)) / norm;
    set.streams.push_back(std::make_unique<PoissonArrivals>(total_rate_per_us * share));
  }
  return set;
}

StreamSet makeChurnStreams(std::size_t count, double total_rate_per_us, double span_us) {
  AFF_CHECK(count > 0);
  AFF_CHECK(span_us >= 0.0);
  StreamSet set;
  const double per = total_rate_per_us / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double delay = span_us * static_cast<double>(i) / static_cast<double>(count);
    set.streams.push_back(std::make_unique<DelayedPoissonArrivals>(per, delay));
  }
  return set;
}

}  // namespace affinity
