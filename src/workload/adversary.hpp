// adversary.hpp — adversarial stream-selection patterns for the chaos
// harness: the traffic shapes an attacker (or an unlucky Internet) uses to
// exhaust per-flow state (docs/ROBUSTNESS.md).
//
// An AdversaryPattern maps a submission index to a stream id. It is a pure
// function of (options, index): no mutable state, no draws consumed from
// any shared rng — so the chaos harness stays bit-deterministic regardless
// of worker count, and kNone reproduces the historical `i % streams` map
// exactly (the determinism tests pin that traffic byte-for-byte).
//
//   kNone       — round-robin over the stream space (seed behavior)
//   kZipf       — Zipf(alpha) popularity: elephants over a long tail of
//                 mice; the tail churns table entries while the head must
//                 survive eviction
//   kChurn      — flow-churn storm: each wave of submissions draws from a
//                 fresh window of the stream space, so never-before-seen
//                 flows arrive continuously
//   kFlash      — flash crowd: most of each period is uniform background,
//                 then a burst concentrates on a handful of hot streams
//   kCollision  — Toeplitz-collision set: a fraction of traffic is packed
//                 into streams whose RSS hash lands on one receive queue,
//                 overloading a single worker and the flow shards behind it
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace affinity {

enum class AdversaryKind : std::uint8_t { kNone, kZipf, kChurn, kFlash, kCollision };

const char* adversaryKindName(AdversaryKind k) noexcept;
/// Parses "none|zipf|churn|flash|collision"; true and sets `out` on success.
bool parseAdversaryKind(const std::string& s, AdversaryKind* out);

/// Shape of an adversarial pattern. `streams` and `seed` are normally
/// overridden by the harness from its own config; the rest are per-kind.
struct AdversaryOptions {
  AdversaryKind kind = AdversaryKind::kNone;
  std::uint32_t streams = 16;
  std::uint64_t seed = 1;

  double zipf_alpha = 1.0;            ///< kZipf: popularity skew (0 = uniform)
  std::uint64_t churn_period = 4096;  ///< kChurn: submissions per wave
  std::uint32_t churn_active = 64;    ///< kChurn: live streams per wave
  std::uint64_t flash_period = 8192;  ///< kFlash: submissions per cycle
  std::uint64_t flash_len = 1024;     ///< kFlash: crowd length at cycle head
  std::uint32_t flash_hot = 4;        ///< kFlash: crowd stream count
  /// kCollision: RSS bucket count to collide within — set to the worker
  /// count so the set shares one receive queue (0 = resolved by the
  /// harness to its worker count).
  unsigned collision_buckets = 0;
  double collision_fraction = 0.75;   ///< kCollision: traffic share on the set
};

/// Deterministic submission-index -> stream map. Thread-compatible: const
/// after construction, usable from any number of readers.
class AdversaryPattern {
 public:
  explicit AdversaryPattern(const AdversaryOptions& options);

  /// Stream id for the `i`-th submitted frame.
  [[nodiscard]] std::uint32_t streamAt(std::uint64_t i) const noexcept;

  [[nodiscard]] const AdversaryOptions& options() const noexcept { return options_; }
  /// kCollision: number of streams whose RSS hash shares the target queue
  /// (>= 1; includes stream 0, the bucket anchor). Exposed for tests.
  [[nodiscard]] std::size_t collisionSetSize() const noexcept {
    return collision_set_.size();
  }

 private:
  AdversaryOptions options_;
  std::vector<double> zipf_cdf_;             ///< kZipf: cumulative popularity
  std::vector<std::uint32_t> collision_set_; ///< kCollision: colliding streams
  std::uint64_t collision_cut_ = 0;          ///< 64-bit threshold for the set share
};

}  // namespace affinity
