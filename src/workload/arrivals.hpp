// arrivals.hpp — per-stream packet arrival processes.
//
// The paper's baseline workload is Poisson arrivals per stream; its
// burstiness results batch arrivals within a stream; and extension (ii)
// uses the Packet-Train model of Jain & Routhier [9]: trains (bursts of
// back-to-back packets) arrive at Poisson epochs, with a geometric number
// of cars per train and a small fixed inter-car gap.
#pragma once

#include <cstdint>
#include <memory>

#include "util/rng.hpp"

namespace affinity {

/// Generates one stream's arrival epochs. next() is called repeatedly; each
/// call yields the gap to the next arrival event and how many packets land
/// at that event (batch size; 1 for simple processes).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  struct Arrival {
    double gap_us = 0.0;      ///< time from the previous event
    std::uint32_t batch = 1;  ///< packets arriving together
  };

  virtual Arrival next(Rng& rng) = 0;

  /// Long-run mean packet rate (packets per µs).
  [[nodiscard]] virtual double meanRatePerUs() const noexcept = 0;

  [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// Poisson arrivals of single packets.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_us);

  Arrival next(Rng& rng) override;
  [[nodiscard]] double meanRatePerUs() const noexcept override { return rate_; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<PoissonArrivals>(*this);
  }

 private:
  double rate_;
};

/// Batch-Poisson: batches arrive at Poisson epochs; batch size is either
/// fixed or geometric with the given mean. Packet rate = batch_rate · mean.
class BatchPoissonArrivals final : public ArrivalProcess {
 public:
  /// `packet_rate_per_us` is the *packet* rate; the batch (event) rate is
  /// packet_rate / batch_mean.
  BatchPoissonArrivals(double packet_rate_per_us, double batch_mean, bool geometric);

  Arrival next(Rng& rng) override;
  [[nodiscard]] double meanRatePerUs() const noexcept override { return packet_rate_; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<BatchPoissonArrivals>(*this);
  }

 private:
  double packet_rate_;
  double batch_mean_;
  bool geometric_;
};

/// Jain–Routhier packet trains: train inter-arrival is exponential; a train
/// carries a geometric number of cars (mean `train_len_mean`, >= 1); cars
/// are spaced `intercar_gap_us` apart.
class PacketTrainArrivals final : public ArrivalProcess {
 public:
  PacketTrainArrivals(double packet_rate_per_us, double train_len_mean, double intercar_gap_us);

  Arrival next(Rng& rng) override;
  [[nodiscard]] double meanRatePerUs() const noexcept override { return packet_rate_; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<PacketTrainArrivals>(*this);
  }

 private:
  double packet_rate_;
  double train_len_mean_;
  double intercar_gap_us_;
  double train_rate_;           ///< trains per µs
  std::uint32_t cars_left_ = 0; ///< cars remaining in the current train
};

/// Poisson arrivals that begin only after a fixed activation delay: the
/// stream is silent, then turns on and stays on. Staggering the delays
/// across a large population produces a flow-churn storm — a steady influx
/// of never-before-seen flows, the state-exhaustion adversary for bounded
/// flow tables (docs/ROBUSTNESS.md).
class DelayedPoissonArrivals final : public ArrivalProcess {
 public:
  DelayedPoissonArrivals(double rate_per_us, double delay_us);

  Arrival next(Rng& rng) override;
  /// Long-run rate is the active phase's (the delay is a transient).
  [[nodiscard]] double meanRatePerUs() const noexcept override { return rate_; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<DelayedPoissonArrivals>(*this);
  }

 private:
  double rate_;
  double delay_us_;
  bool started_ = false;
};

/// Non-stationary wrapper: behaves like `before` until `switch_time_us` of
/// cumulative arrival time has elapsed, then like `after`. Used to exercise
/// adaptive policies (a stream that turns hot/bursty mid-run).
class PhaseSwitchArrivals final : public ArrivalProcess {
 public:
  PhaseSwitchArrivals(std::unique_ptr<ArrivalProcess> before,
                      std::unique_ptr<ArrivalProcess> after, double switch_time_us);

  Arrival next(Rng& rng) override;
  /// Long-run rate is the `after` phase's (the one that persists).
  [[nodiscard]] double meanRatePerUs() const noexcept override {
    return after_->meanRatePerUs();
  }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  std::unique_ptr<ArrivalProcess> before_;
  std::unique_ptr<ArrivalProcess> after_;
  double switch_time_us_;
  double elapsed_us_ = 0.0;
};

}  // namespace affinity
