#include "workload/arrivals.hpp"

#include <cmath>

#include "util/check.hpp"

namespace affinity {

PoissonArrivals::PoissonArrivals(double rate_per_us) : rate_(rate_per_us) {
  AFF_CHECK(rate_ > 0.0);
}

ArrivalProcess::Arrival PoissonArrivals::next(Rng& rng) {
  return Arrival{rng.exponential(rate_), 1};
}

BatchPoissonArrivals::BatchPoissonArrivals(double packet_rate_per_us, double batch_mean,
                                           bool geometric)
    : packet_rate_(packet_rate_per_us), batch_mean_(batch_mean), geometric_(geometric) {
  AFF_CHECK(packet_rate_ > 0.0);
  AFF_CHECK(batch_mean_ >= 1.0);
}

ArrivalProcess::Arrival BatchPoissonArrivals::next(Rng& rng) {
  const double event_rate = packet_rate_ / batch_mean_;
  Arrival a;
  a.gap_us = rng.exponential(event_rate);
  if (geometric_) {
    a.batch = static_cast<std::uint32_t>(rng.geometric(1.0 / batch_mean_));
  } else {
    // Fixed size, rounded stochastically so non-integer means stay unbiased.
    const double floor_size = std::floor(batch_mean_);
    const double frac = batch_mean_ - floor_size;
    a.batch = static_cast<std::uint32_t>(floor_size) + (rng.bernoulli(frac) ? 1u : 0u);
    if (a.batch == 0) a.batch = 1;
  }
  return a;
}

PacketTrainArrivals::PacketTrainArrivals(double packet_rate_per_us, double train_len_mean,
                                         double intercar_gap_us)
    : packet_rate_(packet_rate_per_us),
      train_len_mean_(train_len_mean),
      intercar_gap_us_(intercar_gap_us) {
  AFF_CHECK(packet_rate_ > 0.0);
  AFF_CHECK(train_len_mean_ >= 1.0);
  AFF_CHECK(intercar_gap_us_ >= 0.0);
  // Solve the train (locomotive) rate so the long-run packet rate matches:
  // each train carries train_len_mean packets on average. The inter-train
  // gap is measured from the last car, so the cycle time is
  // E[exp] + (mean_len - 1) * intercar; we keep the packet rate exact by
  // choosing the exponential's rate accordingly.
  const double cycle_needed = train_len_mean_ / packet_rate_;
  const double intra = (train_len_mean_ - 1.0) * intercar_gap_us_;
  const double exp_mean = cycle_needed - intra;
  AFF_CHECK(exp_mean > 0.0);  // offered rate must be feasible given the gaps
  train_rate_ = 1.0 / exp_mean;
}

ArrivalProcess::Arrival PacketTrainArrivals::next(Rng& rng) {
  Arrival a;
  if (cars_left_ > 0) {
    --cars_left_;
    a.gap_us = intercar_gap_us_;
    a.batch = 1;
    return a;
  }
  a.gap_us = rng.exponential(train_rate_);
  a.batch = 1;
  const auto len = static_cast<std::uint32_t>(rng.geometric(1.0 / train_len_mean_));
  cars_left_ = len - 1;  // this arrival is the locomotive
  return a;
}

DelayedPoissonArrivals::DelayedPoissonArrivals(double rate_per_us, double delay_us)
    : rate_(rate_per_us), delay_us_(delay_us) {
  AFF_CHECK(rate_ > 0.0);
  AFF_CHECK(delay_us_ >= 0.0);
}

ArrivalProcess::Arrival DelayedPoissonArrivals::next(Rng& rng) {
  Arrival a{rng.exponential(rate_), 1};
  if (!started_) {
    a.gap_us += delay_us_;
    started_ = true;
  }
  return a;
}

PhaseSwitchArrivals::PhaseSwitchArrivals(std::unique_ptr<ArrivalProcess> before,
                                         std::unique_ptr<ArrivalProcess> after,
                                         double switch_time_us)
    : before_(std::move(before)), after_(std::move(after)), switch_time_us_(switch_time_us) {
  AFF_CHECK(before_ != nullptr && after_ != nullptr);
  AFF_CHECK(switch_time_us_ >= 0.0);
}

ArrivalProcess::Arrival PhaseSwitchArrivals::next(Rng& rng) {
  ArrivalProcess& phase = elapsed_us_ < switch_time_us_ ? *before_ : *after_;
  const Arrival a = phase.next(rng);
  elapsed_us_ += a.gap_us;
  return a;
}

std::unique_ptr<ArrivalProcess> PhaseSwitchArrivals::clone() const {
  auto copy = std::make_unique<PhaseSwitchArrivals>(before_->clone(), after_->clone(),
                                                    switch_time_us_);
  copy->elapsed_us_ = elapsed_us_;
  return copy;
}

}  // namespace affinity
