#include "workload/trace_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "util/check.hpp"

namespace affinity {

std::vector<ArrivalRecord> recordArrivals(const StreamSet& set, double duration_us,
                                          std::uint64_t seed) {
  std::vector<ArrivalRecord> out;
  StreamSet copy = set.clone();
  Rng seeder(seed);
  for (std::uint32_t s = 0; s < copy.count(); ++s) {
    Rng rng = seeder.split(s + 1);
    double t = 0.0;
    for (;;) {
      const auto a = copy.streams[s]->next(rng);
      t += a.gap_us;
      if (t >= duration_us) break;
      for (std::uint32_t k = 0; k < a.batch; ++k) out.push_back(ArrivalRecord{t, s});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ArrivalRecord& a, const ArrivalRecord& b) { return a.time_us < b.time_us; });
  return out;
}

bool writeArrivalTrace(const std::string& path, const std::vector<ArrivalRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "# affinity-sched arrival trace: <time_us> <stream>\n");
  for (const ArrivalRecord& r : records) std::fprintf(f, "%.6f %" PRIu32 "\n", r.time_us, r.stream);
  return std::fclose(f) == 0;
}

std::vector<ArrivalRecord> readArrivalTrace(const std::string& path, std::string* error) {
  std::vector<ArrivalRecord> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return out;
  }
  char line[256];
  int lineno = 0;
  double prev = -1.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lineno;
    if (line[0] == '#' || line[0] == '\n') continue;
    double t = 0.0;
    std::uint32_t s = 0;
    if (std::sscanf(line, "%lf %" SCNu32, &t, &s) != 2 || t < prev) {
      if (error) *error = "bad record at line " + std::to_string(lineno);
      out.clear();
      std::fclose(f);
      return out;
    }
    prev = t;
    out.push_back(ArrivalRecord{t, s});
  }
  std::fclose(f);
  return out;
}

TraceArrivals::TraceArrivals(std::vector<double> gaps, std::vector<std::uint32_t> batches,
                             double duration_us)
    : gaps_(std::move(gaps)), batches_(std::move(batches)), duration_us_(duration_us) {
  AFF_CHECK(gaps_.size() == batches_.size());
  total_packets_ = 0;
  for (std::uint32_t b : batches_) total_packets_ += b;
}

ArrivalProcess::Arrival TraceArrivals::next(Rng&) {
  if (pos_ >= gaps_.size()) {
    // Recording exhausted: never fires again.
    return Arrival{std::numeric_limits<double>::infinity(), 0};
  }
  const Arrival a{gaps_[pos_], batches_[pos_]};
  ++pos_;
  return a;
}

double TraceArrivals::meanRatePerUs() const noexcept {
  if (duration_us_ <= 0.0) return 0.0;
  return static_cast<double>(total_packets_) / duration_us_;
}

std::unique_ptr<ArrivalProcess> TraceArrivals::clone() const {
  auto copy = std::make_unique<TraceArrivals>(gaps_, batches_, duration_us_);
  copy->pos_ = pos_;
  return copy;
}

StreamSet makeTraceStreams(const std::vector<ArrivalRecord>& records, double duration_us) {
  std::uint32_t max_stream = 0;
  double last_time = 0.0;
  for (const ArrivalRecord& r : records) {
    max_stream = std::max(max_stream, r.stream);
    last_time = std::max(last_time, r.time_us);
  }
  if (duration_us <= 0.0) duration_us = last_time > 0.0 ? last_time : 1.0;
  const std::size_t n = records.empty() ? 1 : max_stream + 1;

  std::vector<std::vector<double>> gaps(n);
  std::vector<std::vector<std::uint32_t>> batches(n);
  std::vector<double> last(n, 0.0);
  for (const ArrivalRecord& r : records) {
    auto& g = gaps[r.stream];
    auto& b = batches[r.stream];
    if (!g.empty() && r.time_us == last[r.stream]) {
      ++b.back();  // batch: same timestamp
      continue;
    }
    g.push_back(r.time_us - last[r.stream]);
    b.push_back(1);
    last[r.stream] = r.time_us;
  }

  StreamSet set;
  for (std::size_t s = 0; s < n; ++s)
    set.streams.push_back(
        std::make_unique<TraceArrivals>(std::move(gaps[s]), std::move(batches[s]), duration_us));
  return set;
}

}  // namespace affinity
