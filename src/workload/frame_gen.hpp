// frame_gen.hpp — deterministic wire-frame corpus for the real-thread
// engines and the chaos harness.
//
// FrameCorpus pre-builds, per stream, a small set of valid UDP/IP/FDDI
// frames (varying source port, payload size, and payload bytes — all
// derived from the seed) and then serves them round-robin. Pre-building
// keeps the submit loop allocation-light and — more importantly — makes
// the byte content of frame i of stream s a pure function of (seed, s, i),
// which the chaos determinism guard depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/stack.hpp"
#include "util/rng.hpp"

namespace affinity {

/// Deterministic per-stream frame source.
class FrameCorpus {
 public:
  struct Options {
    std::uint32_t streams = 8;
    std::uint16_t dst_port = 7000;        ///< the port the engines open
    std::size_t variants_per_stream = 4;  ///< distinct frames per stream
    std::size_t min_payload = 16;
    std::size_t max_payload = 512;
  };

  FrameCorpus(std::uint64_t seed, const Options& options);

  /// The `index`-th frame of `stream` (round-robin over the variants).
  /// The returned vector is a copy the caller may mutate (fault injection).
  [[nodiscard]] std::vector<std::uint8_t> frame(std::uint32_t stream, std::uint64_t index) const;

  [[nodiscard]] std::uint32_t streams() const noexcept { return options_.streams; }
  [[nodiscard]] std::uint16_t dstPort() const noexcept { return options_.dst_port; }

 private:
  Options options_;
  // variants_[stream][variant] — complete wire frames.
  std::vector<std::vector<std::vector<std::uint8_t>>> variants_;
};

}  // namespace affinity
