// frame_gen.hpp — deterministic wire-frame corpus for the real-thread
// engines and the chaos harness.
//
// FrameCorpus pre-builds, per stream, a small set of valid UDP/IP/FDDI
// frames (varying source port, payload size, and payload bytes — all
// derived from the seed) and then serves them round-robin. Pre-building
// keeps the submit loop allocation-light and — more importantly — makes
// the byte content of frame i of stream s a pure function of (seed, s, i),
// which the chaos determinism guard depends on.
//
// Above kLazyStreamThreshold streams the prebuilt cache would dominate
// memory (10^5 streams × 4 variants × ~300 B ≈ 140 MB), defeating the
// point of a fixed-budget flow table — so the corpus switches to lazy
// mode: frame() replays the per-stream rng draw sequence on demand. The
// bytes are identical to prebuilt mode by construction (same split, same
// draw order), which FrameGen.LazyModeMatchesPrebuilt pins.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/stack.hpp"
#include "util/rng.hpp"

namespace affinity {

/// Deterministic per-stream frame source.
class FrameCorpus {
 public:
  struct Options {
    std::uint32_t streams = 8;
    std::uint16_t dst_port = 7000;        ///< the port the engines open
    std::size_t variants_per_stream = 4;  ///< distinct frames per stream
    std::size_t min_payload = 16;
    std::size_t max_payload = 512;
  };

  /// Stream counts above this use lazy (on-demand) frame construction.
  static constexpr std::uint32_t kLazyStreamThreshold = 4096;

  FrameCorpus(std::uint64_t seed, const Options& options);

  /// The `index`-th frame of `stream` (round-robin over the variants).
  /// The returned vector is a copy the caller may mutate (fault injection).
  [[nodiscard]] std::vector<std::uint8_t> frame(std::uint32_t stream, std::uint64_t index) const;

  [[nodiscard]] std::uint32_t streams() const noexcept { return options_.streams; }
  [[nodiscard]] std::uint16_t dstPort() const noexcept { return options_.dst_port; }
  [[nodiscard]] bool lazy() const noexcept { return lazy_; }

 private:
  /// Builds variant `v` of `stream` by advancing `rng` through the exact
  /// draw sequence of all earlier variants of the stream (lazy mode replays
  /// this; prebuilt mode runs it once per variant in order).
  [[nodiscard]] std::vector<std::uint8_t> buildVariant(std::uint32_t stream, std::size_t v,
                                                       Rng& rng) const;

  Options options_;
  std::uint64_t seed_ = 0;
  bool lazy_ = false;
  // variants_[stream][variant] — complete wire frames (prebuilt mode only).
  std::vector<std::vector<std::vector<std::uint8_t>>> variants_;
};

}  // namespace affinity
