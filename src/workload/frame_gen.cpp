#include "workload/frame_gen.hpp"

#include "util/check.hpp"

namespace affinity {

FrameCorpus::FrameCorpus(std::uint64_t seed, const Options& options) : options_(options) {
  AFF_CHECK(options.streams >= 1);
  AFF_CHECK(options.variants_per_stream >= 1);
  AFF_CHECK(options.min_payload <= options.max_payload);
  Rng root(seed);
  variants_.resize(options.streams);
  for (std::uint32_t s = 0; s < options.streams; ++s) {
    Rng rng = root.split(s);
    variants_[s].reserve(options.variants_per_stream);
    for (std::size_t v = 0; v < options.variants_per_stream; ++v) {
      FrameSpec spec;
      // One source host per stream, one source port per variant — the
      // receive stack demuxes on dst_port, so all variants land in the
      // same session.
      spec.src_ip = 0x0a000000u + s;  // 10.0.x.x
      spec.src_port = static_cast<std::uint16_t>(20000 + s * 16 + v);
      spec.dst_port = options.dst_port;
      spec.ip_id = static_cast<std::uint16_t>(s * 251 + v);
      const std::size_t span = options.max_payload - options.min_payload + 1;
      std::vector<std::uint8_t> payload(options.min_payload + rng.uniform_u64(span));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
      variants_[s].push_back(buildUdpFrame(spec, payload));
    }
  }
}

std::vector<std::uint8_t> FrameCorpus::frame(std::uint32_t stream, std::uint64_t index) const {
  const auto& per_stream = variants_[stream % options_.streams];
  return per_stream[index % per_stream.size()];
}

}  // namespace affinity
