#include "workload/frame_gen.hpp"

#include "util/check.hpp"

namespace affinity {

FrameCorpus::FrameCorpus(std::uint64_t seed, const Options& options)
    : options_(options), seed_(seed), lazy_(options.streams > kLazyStreamThreshold) {
  AFF_CHECK(options.streams >= 1);
  AFF_CHECK(options.variants_per_stream >= 1);
  AFF_CHECK(options.min_payload <= options.max_payload);
  if (lazy_) return;  // frames materialize on demand in frame()
  Rng root(seed);
  variants_.resize(options.streams);
  for (std::uint32_t s = 0; s < options.streams; ++s) {
    Rng rng = root.split(s);
    variants_[s].reserve(options.variants_per_stream);
    for (std::size_t v = 0; v < options.variants_per_stream; ++v)
      variants_[s].push_back(buildVariant(s, v, rng));
  }
}

std::vector<std::uint8_t> FrameCorpus::buildVariant(std::uint32_t stream, std::size_t v,
                                                    Rng& rng) const {
  FrameSpec spec;
  // One source host per stream, one source port per variant — the
  // receive stack demuxes on dst_port, so all variants land in the
  // same session.
  spec.src_ip = 0x0a000000u + stream;  // 10.0.x.x
  spec.src_port = static_cast<std::uint16_t>(20000 + stream * 16 + v);
  spec.dst_port = options_.dst_port;
  spec.ip_id = static_cast<std::uint16_t>(stream * 251 + v);
  const std::size_t span = options_.max_payload - options_.min_payload + 1;
  std::vector<std::uint8_t> payload(options_.min_payload + rng.uniform_u64(span));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return buildUdpFrame(spec, payload);
}

std::vector<std::uint8_t> FrameCorpus::frame(std::uint32_t stream, std::uint64_t index) const {
  const std::uint32_t s = stream % options_.streams;
  const std::size_t v = index % options_.variants_per_stream;
  if (!lazy_) return variants_[s][v];
  // Lazy mode: replay the stream's draw sequence up to variant v. The draw
  // order is identical to the prebuilt loop, so the bytes are too.
  Rng rng = Rng(seed_).split(s);
  for (std::size_t earlier = 0; earlier < v; ++earlier) {
    const std::size_t span = options_.max_payload - options_.min_payload + 1;
    const std::size_t len = options_.min_payload + rng.uniform_u64(span);
    for (std::size_t b = 0; b < len; ++b) rng.uniform_u64(256);
  }
  return buildVariant(s, v, rng);
}

}  // namespace affinity
