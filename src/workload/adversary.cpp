#include "workload/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "net/toeplitz.hpp"
#include "util/check.hpp"

namespace affinity {

namespace {

// splitmix64 finalizer: one avalanche step per submission index, so every
// pattern is a pure function of (seed, i) with no sequential rng state.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* adversaryKindName(AdversaryKind k) noexcept {
  switch (k) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kZipf: return "zipf";
    case AdversaryKind::kChurn: return "churn";
    case AdversaryKind::kFlash: return "flash";
    case AdversaryKind::kCollision: return "collision";
  }
  return "?";
}

bool parseAdversaryKind(const std::string& s, AdversaryKind* out) {
  if (s == "none") *out = AdversaryKind::kNone;
  else if (s == "zipf") *out = AdversaryKind::kZipf;
  else if (s == "churn") *out = AdversaryKind::kChurn;
  else if (s == "flash") *out = AdversaryKind::kFlash;
  else if (s == "collision") *out = AdversaryKind::kCollision;
  else return false;
  return true;
}

AdversaryPattern::AdversaryPattern(const AdversaryOptions& options) : options_(options) {
  AFF_CHECK(options_.streams >= 1);
  switch (options_.kind) {
    case AdversaryKind::kNone:
      break;
    case AdversaryKind::kZipf: {
      AFF_CHECK(options_.zipf_alpha >= 0.0);
      zipf_cdf_.reserve(options_.streams);
      double sum = 0.0;
      for (std::uint32_t s = 0; s < options_.streams; ++s) {
        sum += 1.0 / std::pow(static_cast<double>(s + 1), options_.zipf_alpha);
        zipf_cdf_.push_back(sum);
      }
      for (auto& c : zipf_cdf_) c /= sum;
      break;
    }
    case AdversaryKind::kChurn:
      AFF_CHECK(options_.churn_period >= 1);
      AFF_CHECK(options_.churn_active >= 1);
      break;
    case AdversaryKind::kFlash:
      AFF_CHECK(options_.flash_period >= 1);
      AFF_CHECK(options_.flash_len <= options_.flash_period);
      AFF_CHECK(options_.flash_hot >= 1);
      break;
    case AdversaryKind::kCollision: {
      AFF_CHECK(options_.collision_buckets >= 1);
      // Streams whose RSS indirection entry maps to stream 0's receive
      // queue: with the default round-robin table, entry e serves queue
      // e % buckets (net/dispatch.cpp), so this set shares one worker.
      const net::ToeplitzHash h;
      constexpr std::uint32_t kEntries = 128;  // NicDispatcher::kIndirectionEntries
      const unsigned target =
          (net::rssHashForStream(h, 0) % kEntries) % options_.collision_buckets;
      for (std::uint32_t s = 0; s < options_.streams; ++s) {
        if ((net::rssHashForStream(h, s) % kEntries) % options_.collision_buckets == target)
          collision_set_.push_back(s);
      }
      if (collision_set_.empty()) collision_set_.push_back(0);
      const double f = std::clamp(options_.collision_fraction, 0.0, 1.0);
      // f < 1 keeps f * 2^64 below 2^64, so the cast is exact; casting
      // 2^64 itself would overflow, so 1.0 saturates to the max cut
      // (streamAt compares r <= cut, so the whole hash space collides).
      collision_cut_ = f >= 1.0 ? 0xffffffffffffffffULL
                                : static_cast<std::uint64_t>(std::ldexp(f, 64));
      break;
    }
  }
}

std::uint32_t AdversaryPattern::streamAt(std::uint64_t i) const noexcept {
  const std::uint32_t n = options_.streams;
  switch (options_.kind) {
    case AdversaryKind::kNone:
      // Bit-compatible with the historical harness map: pinned chaos
      // ledgers depend on this exact sequence.
      return static_cast<std::uint32_t>(i % n);
    case AdversaryKind::kZipf: {
      const double u = static_cast<double>(mix64(options_.seed ^ i) >> 11) *
                       (1.0 / 9007199254740992.0);  // 53-bit uniform in [0,1)
      const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      const auto rank = static_cast<std::uint32_t>(it - zipf_cdf_.begin());
      return rank < n ? rank : n - 1;
    }
    case AdversaryKind::kChurn: {
      // Each wave draws from a fresh window of the stream space, so new
      // flows keep arriving for as long as the storm lasts.
      const std::uint64_t wave = i / options_.churn_period;
      const std::uint64_t idx = mix64(options_.seed ^ i) % options_.churn_active;
      return static_cast<std::uint32_t>((wave * options_.churn_active + idx) % n);
    }
    case AdversaryKind::kFlash: {
      const std::uint64_t r = mix64(options_.seed ^ i);
      if (i % options_.flash_period < options_.flash_len) {
        const std::uint32_t hot = std::min(options_.flash_hot, n);
        return static_cast<std::uint32_t>(r % hot);
      }
      return static_cast<std::uint32_t>(r % n);
    }
    case AdversaryKind::kCollision: {
      const std::uint64_t r = mix64(options_.seed ^ i);
      if (r <= collision_cut_) {
        return collision_set_[mix64(r) % collision_set_.size()];
      }
      return static_cast<std::uint32_t>(r % n);
    }
  }
  return static_cast<std::uint32_t>(i % n);
}

}  // namespace affinity
