// stream_set.hpp — collections of concurrent streams.
//
// A StreamSet owns one arrival process per stream. Builders cover the
// paper's scenarios: homogeneous Poisson streams, bursty (batch) streams,
// packet-train streams, and heterogeneous mixes (a few hot streams over a
// background population).
#pragma once

#include <memory>
#include <vector>

#include "workload/arrivals.hpp"

namespace affinity {

/// Owning set of per-stream arrival processes.
struct StreamSet {
  std::vector<std::unique_ptr<ArrivalProcess>> streams;

  [[nodiscard]] std::size_t count() const noexcept { return streams.size(); }

  /// Aggregate mean packet rate (packets/µs).
  [[nodiscard]] double totalRatePerUs() const noexcept;

  [[nodiscard]] StreamSet clone() const;
};

/// `count` identical Poisson streams sharing `total_rate_per_us` equally.
StreamSet makePoissonStreams(std::size_t count, double total_rate_per_us);

/// `count` identical batch-Poisson streams (burstiness experiments).
StreamSet makeBatchStreams(std::size_t count, double total_rate_per_us, double batch_mean,
                           bool geometric = false);

/// `count` identical packet-train streams (extension ii).
StreamSet makeTrainStreams(std::size_t count, double total_rate_per_us, double train_len_mean,
                           double intercar_gap_us);

/// Heterogeneous mix: `hot_count` streams carry `hot_share` of the total
/// rate; the remaining streams split the rest (hybrid-policy experiments).
StreamSet makeHotColdStreams(std::size_t hot_count, std::size_t cold_count,
                             double total_rate_per_us, double hot_share);

/// Zipf-popularity mix: stream i's rate is proportional to 1/(i+1)^alpha,
/// normalized to `total_rate_per_us`. alpha = 0 degenerates to uniform;
/// alpha ~ 1 is the classic web/flow popularity curve — a few elephants
/// over a long tail of mice, the workload that stresses a bounded flow
/// table's eviction policy (the tail keeps inserting, the head must stay).
StreamSet makeZipfStreams(std::size_t count, double total_rate_per_us, double alpha);

/// Flow-churn storm: `count` Poisson streams whose activation times are
/// staggered uniformly across `span_us`, so never-before-seen flows keep
/// arriving for the whole span — the state-exhaustion adversary. Rates are
/// equal; the long-run aggregate is `total_rate_per_us`.
StreamSet makeChurnStreams(std::size_t count, double total_rate_per_us, double span_us);

}  // namespace affinity
